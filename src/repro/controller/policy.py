"""Pluggable load-sharing policies: the decision seam of the controller.

The reconcile loop in :mod:`repro.controller.controller` separates
*mechanics* (tracking in-flight flows, decision telemetry, monitor
wiring, the min-FE backstop) from *strategy* — and the strategy is this
module's :class:`LoadSharingPolicy` surface:

* **what to offload** — candidate ranking (:meth:`offload_order`) and
  the post-offload utilization projection (:meth:`project`);
* **where** — FE selection (:meth:`select_fes`), normally delegated to
  :class:`~repro.controller.placement.FePlacement`;
* **when** — scale-out vs scale-in reaction (:meth:`scale`), the
  fallback admission check (:meth:`fallback_decision`), and an optional
  per-tick tail hook (:meth:`reconcile_tail`).

Four policies compete behind the seam:

* :class:`NezhaPolicy` — the paper's Fig 8 behavior, byte-identical to
  the pre-extraction controller (the legacy-default idiom, like
  ``Engine.micro_queue`` and ``FlowRecordStore.enabled``);
* :class:`PamPolicy` — PAM's push-neighbor-aside (arxiv/1805.10434): an
  overloaded FE host *migrates* its hosted FEs to the least-loaded
  neighbor instead of scaling the BE out or evicting its whole FE set;
* :class:`SuperNicPolicy` — SuperNIC-style multi-tenant FE scheduling
  (arxiv/2109.07744): per-tenant fair shares of the FE budget, with
  preemption of over-quota tenants' excess FEs;
* :class:`SiriusPolicy` — the no-load-sharing baseline: never offloads,
  never scales, never falls back (every vSwitch keeps its own load).

The ``policy_arena`` experiment scores them head-to-head; the fleet
coordinator mirrors the same names at fleet granularity
(:mod:`repro.fleet.coordinator`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Type

if TYPE_CHECKING:  # imported only for annotations: no runtime cycle
    from repro.controller.controller import NezhaController, _NodeBook
    from repro.core.offload import OffloadHandle
    from repro.vswitch.vnic import Vnic
    from repro.vswitch.vswitch import VSwitch


class LoadSharingPolicy:
    """Abstract decision surface consumed by :class:`NezhaController`.

    A policy is bound to exactly one controller via :meth:`bind` and may
    use the controller's mechanics (``placement``, ``orchestrator``,
    ``config``, ``_track_flow``, ``_decide``) — but every *decision*
    about what/where/when lives here, so competing strategies swap in
    without touching the reconcile loop.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.controller: Optional["NezhaController"] = None

    def bind(self, controller: "NezhaController") -> None:
        self.controller = controller

    def decide(self, action: str, **fields) -> None:
        """Trace + journal one policy decision through the bound
        controller — the seam's single observability funnel, so every
        policy's why-log lands in the same ``controller.<action>`` trace
        kinds and (under telemetry) the same decision journal."""
        self.controller._decide(action, **fields)

    # -- what to offload ---------------------------------------------------

    def offload_order(self, book: "_NodeBook", candidates: List["Vnic"],
                      by_memory: bool) -> List["Vnic"]:
        """Rank offload candidates, hottest first. Returning ``[]``
        vetoes offloading entirely."""
        raise NotImplementedError

    def project(self, utilization: float, vnic: "Vnic", book: "_NodeBook",
                by_memory: bool) -> float:
        """Projected utilization of the triggering resource after
        ``vnic`` is offloaded (drives the offload-until-safe loop)."""
        raise NotImplementedError

    # -- where -------------------------------------------------------------

    def select_fes(self, be_vswitch: "VSwitch", count: int,
                   avoid: Optional[Set[str]] = None,
                   vnic: Optional["Vnic"] = None) -> List["VSwitch"]:
        """Choose FE-hosting vSwitches for ``be_vswitch``. ``vnic`` is
        the owner when known (tenant-aware policies key quotas on it)."""
        raise NotImplementedError

    # -- when --------------------------------------------------------------

    def scale(self, book: "_NodeBook", cpu: float) -> None:
        """React to utilization above the scale threshold but below the
        offload threshold (the Fig 8 middle band)."""
        raise NotImplementedError

    def fallback_decision(self, handle: "OffloadHandle",
                          fe_usage: float) -> Tuple[bool, float]:
        """``(allowed, projected_be_utilization)`` for an idle-enough
        offloaded vNIC (the idle-streak bookkeeping lives in the
        controller; this is only the admission check)."""
        raise NotImplementedError

    def reconcile_tail(self) -> None:
        """Per-tick hook after offload/scale/fallback (default no-op);
        policies with global bookkeeping (quota preemption) live here."""


class NezhaPolicy(LoadSharingPolicy):
    """The paper's strategy, extracted verbatim from the controller.

    Decision table (Fig 8):

    * rank candidates by packet rate (CPU trigger) or rule-table bytes
      (memory trigger); project by the matching resource share;
    * place FEs via :class:`FePlacement` (same-ToR first, lowest
      utilization, stable name tie-break);
    * scale band: remote-dominant load scales hosted vNICs *out*,
      local-dominant load scales this vSwitch *in* (evict every FE);
    * fall back only when the BE can absorb the load afterwards.
    """

    name = "nezha"

    # -- what --------------------------------------------------------------

    def offload_order(self, book, candidates, by_memory):
        if by_memory:
            return sorted(candidates,
                          key=lambda v: -v.table_memory_bytes())
        return sorted(candidates,
                      key=lambda v: -book.vnic_rates.get(v.vnic_id, 0.0))

    def project(self, utilization, vnic, book, by_memory):
        if by_memory:
            # Memory pressure is relieved in proportion to the vNIC's
            # share of the *resident rule-table bytes* — projecting by
            # packet-rate share here (the pre-arena bug) made a hot-rate
            # vNIC look like it freed memory it never held, stopping
            # memory-triggered offloading after one vNIC.
            share = float(vnic.table_memory_bytes())
            total = float(sum(v.table_memory_bytes()
                              for v in book.vswitch.vnics.values()
                              if not v.offloaded)) or 1.0
            return utilization * max(0.0, 1.0 - share / total)
        share = book.vnic_rates.get(vnic.vnic_id, 0.0)
        total_rate = sum(book.vnic_rates.values()) or 1.0
        return utilization * max(0.0, 1.0 - share / total_rate)

    # -- where -------------------------------------------------------------

    def select_fes(self, be_vswitch, count, avoid=None, vnic=None):
        return self.controller.placement.select(be_vswitch, count,
                                                avoid=avoid)

    # -- when --------------------------------------------------------------

    def scale(self, book, cpu):
        c = self.controller
        vswitch = book.vswitch
        agent = c.orchestrator.agents.get(vswitch.name)
        if agent is None or not agent.frontends:
            return  # nothing Nezha-related to scale here
        remote_share = agent.fe_load()
        if remote_share >= c.config.remote_dominant_fraction:
            # Remote offloading overloads this host: scale those vNICs out.
            for vnic_id in list(agent.frontends):
                handle = c.orchestrator.handles.get(vnic_id)
                if handle is None or vnic_id in c._inflight_vnics:
                    # An earlier scale-out for this vNIC is still in
                    # flight; its FE is not visible in the handle yet, so
                    # acting again would serially over-scale the vNIC.
                    continue
                new_fes = self.select_fes(
                    handle.be_vswitch, 1,
                    avoid={vs.server.name for vs in handle.fe_vswitches},
                    vnic=handle.vnic)
                if new_fes:
                    done = c.orchestrator.scale_out(handle, new_fes)
                    c._track_flow(vnic_id, done)
                    c.scale_outs += 1
                    self.decide("scale_out", vnic=vnic_id,
                                fe=new_fes[0].name, cpu=round(cpu, 4),
                                remote_share=round(remote_share, 4))
        else:
            # Local traffic needs the resources: evict every hosted FE.
            c.placement.exclude(vswitch)
            removed = c.orchestrator.scale_in_vswitch(vswitch)
            if removed:
                c.scale_ins += 1
                self.decide("scale_in", vswitch=vswitch.name,
                            removed=removed, cpu=round(cpu, 4),
                            remote_share=round(remote_share, 4))

    def fallback_decision(self, handle, fe_usage):
        be = handle.be_vswitch
        # Only fall back when the BE can absorb the load afterwards.
        projected = be.cpu_utilization() + fe_usage * len(handle.frontends)
        allowed = (projected < self.controller.config.safe_level
                   and be.mem.available()
                   >= handle.vnic.table_memory_bytes())
        return allowed, projected


class PamPolicy(NezhaPolicy):
    """PAM's push-neighbor-aside migration (arxiv/1805.10434).

    Decision table — differs from Nezha only in the scale band:

    * an overloaded vSwitch *hosting FEs* migrates them, one by one, to
      its least-loaded eligible neighbor (scale-out to the neighbor,
      then graceful retirement of the local instance once the new FE
      lands) — load moves sideways instead of growing the FE set;
    * it never scales in (no all-at-once eviction) and never excludes
      itself from placement, so capacity is not withdrawn from the pool;
    * offload/projection/fallback are inherited from Nezha.
    """

    name = "pam"

    def __init__(self) -> None:
        super().__init__()
        self.migrations = 0

    def scale(self, book, cpu):
        c = self.controller
        vswitch = book.vswitch
        agent = c.orchestrator.agents.get(vswitch.name)
        if agent is None or not agent.frontends:
            return  # an overloaded non-FE host has nothing to push aside
        for vnic_id in list(agent.frontends):
            handle = c.orchestrator.handles.get(vnic_id)
            if handle is None or vnic_id in c._inflight_vnics:
                continue
            # Least-loaded neighbor of the *overloaded host* (placement
            # tiers widen from it), excluding every current FE server.
            targets = self.select_fes(
                vswitch, 1,
                avoid={vs.server.name for vs in handle.fe_vswitches},
                vnic=handle.vnic)
            if not targets:
                self.decide("no_migration_target", vnic=vnic_id,
                            vswitch=vswitch.name)
                continue
            done = c.orchestrator.migrate_fe(handle, vswitch, targets[0])
            c._track_flow(vnic_id, done)
            self.migrations += 1
            self.decide("fe_migration", vnic=vnic_id, src=vswitch.name,
                        dst=targets[0].name, cpu=round(cpu, 4))


class SuperNicPolicy(NezhaPolicy):
    """SuperNIC-style multi-tenant FE scheduling (arxiv/2109.07744).

    Tenants are VNIs. The FE *budget* (by default one unit per
    placement-eligible vSwitch) is split into equal fair shares across
    the tenants that currently hold or request FEs:

    * FE grants (initial offload, scale-out, min-FE replacements) are
      capped at the tenant's remaining quota — an over-quota tenant gets
      nothing, an under-quota tenant at most its headroom;
    * each tick, tenants holding more than the current quota are
      *preempted*: their newest FEs are gracefully retired (never below
      one FE per vNIC) until they fit, freeing budget for others;
    * offload ranking/projection and the fallback check are Nezha's.
    """

    name = "supernic"

    def __init__(self, fe_budget: Optional[int] = None) -> None:
        super().__init__()
        #: Total FE units schedulable across tenants; ``None`` derives
        #: it from the placement pool each tick.
        self.fe_budget = fe_budget
        self.preemptions = 0

    # -- quota bookkeeping -------------------------------------------------

    def _budget(self) -> int:
        if self.fe_budget is not None:
            return self.fe_budget
        placement = self.controller.placement
        return max(1, len(placement.vswitches) - len(placement.excluded))

    def _tenant_usage(self) -> Dict[int, int]:
        usage: Dict[int, int] = {}
        for handle in self.controller.orchestrator.handles.values():
            vni = handle.vnic.vni
            usage[vni] = usage.get(vni, 0) + len(handle.frontends)
        return usage

    def _quota(self, usage: Dict[int, int],
               extra_tenant: Optional[int] = None) -> int:
        tenants = set(usage)
        if extra_tenant is not None:
            tenants.add(extra_tenant)
        return max(1, self._budget() // max(1, len(tenants)))

    # -- where (quota-capped) ----------------------------------------------

    def select_fes(self, be_vswitch, count, avoid=None, vnic=None):
        if vnic is None:
            return super().select_fes(be_vswitch, count, avoid=avoid)
        usage = self._tenant_usage()
        quota = self._quota(usage, extra_tenant=vnic.vni)
        headroom = quota - usage.get(vnic.vni, 0)
        if headroom <= 0:
            self.decide("quota_denied", vnic=vnic.vnic_id,
                        tenant=vnic.vni, quota=quota)
            return []
        return super().select_fes(be_vswitch, min(count, headroom),
                                  avoid=avoid, vnic=vnic)

    # -- preemption of over-quota tenants ----------------------------------

    def reconcile_tail(self):
        c = self.controller
        usage = self._tenant_usage()
        if not usage:
            return
        quota = self._quota(usage)
        for handle in list(c.orchestrator.handles.values()):
            vni = handle.vnic.vni
            while (usage.get(vni, 0) > quota
                   and len(handle.frontends) > 1):
                location = handle.fe_locations[-1]  # newest grant first
                c.orchestrator.preempt_fe(handle, location)
                usage[vni] -= 1
                self.preemptions += 1
                self.decide("fe_preempted", vnic=handle.vnic.vnic_id,
                            tenant=vni, quota=quota)


class SiriusPolicy(LoadSharingPolicy):
    """The no-load-sharing baseline: every vSwitch keeps its own load.

    Sirius (the pre-Nezha vSwitch) has no FEs to place, nothing to scale
    and nothing to fall back — overloaded vSwitches saturate and drop.
    The arena's "before" column.
    """

    name = "sirius"

    def offload_order(self, book, candidates, by_memory):
        return []

    def project(self, utilization, vnic, book, by_memory):
        return utilization

    def select_fes(self, be_vswitch, count, avoid=None, vnic=None):
        return []

    def scale(self, book, cpu):
        return None

    def fallback_decision(self, handle, fe_usage):
        return False, 0.0


#: CLI / experiment registry: name -> policy class.
POLICIES: Dict[str, Type[LoadSharingPolicy]] = {
    NezhaPolicy.name: NezhaPolicy,
    PamPolicy.name: PamPolicy,
    SuperNicPolicy.name: SuperNicPolicy,
    SiriusPolicy.name: SiriusPolicy,
}

POLICY_NAMES = tuple(POLICIES)


def make_policy(name: str) -> LoadSharingPolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown load-sharing policy {name!r}; "
                         f"choose from {', '.join(POLICIES)}") from None
    return cls()
