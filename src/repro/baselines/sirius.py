"""A Sirius-style remote pool model (Bansal et al., NSDI'23), for the
ablation comparing stateful-pool designs against Nezha's stateless FEs.

Two properties the paper calls out are modeled:

* **In-line state replication**: packets that change state ping-pong
  between a primary and a secondary card, so "the NF capacity halves" —
  a new connection consumes processing on *both* cards of a pair.
* **Bucket-based load balancing**: flows hash into a fixed number of
  buckets assigned to cards; moving load reassigns buckets, and existing
  long-lived flows in a moved bucket need *state transfer* to the new
  card. Nezha needs none of this (FEs hold no state).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.net.five_tuple import FiveTuple
from repro.sim.rng import SeededRng


@dataclass
class SiriusPool:
    """Analytic capacity model of a primary/backup DPU pool."""

    n_cards: int = 4
    card_cps_capacity: float = 100_000.0
    card_flow_capacity: int = 1_000_000
    replication_factor: int = 2   # primary + secondary hold every state

    def __post_init__(self) -> None:
        if self.n_cards < 2:
            raise ConfigError("a primary/backup pool needs >= 2 cards")
        if self.n_cards % 2:
            raise ConfigError("cards pair up: n_cards must be even")

    @property
    def pairs(self) -> int:
        return self.n_cards // 2

    def cps_capacity(self) -> float:
        """New connections ping-pong between the pair members: the pool's
        CPS is half the summed card capacity (§2.3.3)."""
        return self.n_cards * self.card_cps_capacity / self.replication_factor

    def flow_capacity(self) -> int:
        """Each state is held on both pair members."""
        return (self.n_cards * self.card_flow_capacity
                // self.replication_factor)

    def nezha_equivalent_cps(self) -> float:
        """What the same cards would deliver as stateless Nezha FEs."""
        return self.n_cards * self.card_cps_capacity


class BucketMigration:
    """Bucket-based load balancing with state transfer accounting."""

    def __init__(self, n_buckets: int = 64, n_cards: int = 4,
                 rng: Optional[SeededRng] = None) -> None:
        if n_buckets < n_cards:
            raise ConfigError("need at least one bucket per card")
        self.n_buckets = n_buckets
        self.n_cards = n_cards
        self.rng = rng or SeededRng(0, "sirius-buckets")
        # bucket -> card, initially round-robin.
        self.assignment: Dict[int, int] = {
            b: b % n_cards for b in range(n_buckets)}
        # bucket -> live long-lived flow count (short flows drain on their
        # own; only long-lived flows require transfer, §8).
        self.long_lived: Dict[int, int] = {b: 0 for b in range(n_buckets)}
        self.states_transferred = 0
        self.buckets_moved = 0

    def bucket_of(self, ft: FiveTuple) -> int:
        return ft.hash() % self.n_buckets

    def card_of(self, ft: FiveTuple) -> int:
        return self.assignment[self.bucket_of(ft)]

    def add_long_lived_flow(self, ft: FiveTuple) -> int:
        bucket = self.bucket_of(ft)
        self.long_lived[bucket] += 1
        return self.assignment[bucket]

    def load_per_card(self) -> Dict[int, int]:
        loads = {card: 0 for card in range(self.n_cards)}
        for bucket, card in self.assignment.items():
            loads[card] += self.long_lived[bucket]
        return loads

    def rebalance(self) -> Tuple[int, int]:
        """Move buckets from the most- to the least-loaded card until the
        pair is within one bucket's load; returns (buckets moved, states
        transferred). This is the coordination cost Nezha avoids."""
        moved = transferred = 0
        while True:
            loads = self.load_per_card()
            hot = max(loads, key=loads.get)
            cold = min(loads, key=loads.get)
            gap = loads[hot] - loads[cold]
            candidates = sorted(
                (b for b, c in self.assignment.items() if c == hot),
                key=lambda b: self.long_lived[b])
            movable = [b for b in candidates
                       if 0 < self.long_lived[b] * 2 < gap]
            if not movable:
                break
            bucket = movable[-1]  # biggest bucket that still helps
            self.assignment[bucket] = cold
            moved += 1
            transferred += self.long_lived[bucket]
        self.buckets_moved += moved
        self.states_transferred += transferred
        return moved, transferred

    def add_card(self) -> Tuple[int, int]:
        """Scale out: a new card receives ~1/n of the buckets; their
        long-lived flows all need state transfer."""
        self.n_cards += 1
        new_card = self.n_cards - 1
        to_move = self.n_buckets // self.n_cards
        moved = transferred = 0
        by_load = sorted(self.assignment,
                         key=lambda b: -self.long_lived[b])
        for bucket in by_load[:to_move]:
            self.assignment[bucket] = new_card
            moved += 1
            transferred += self.long_lived[bucket]
        self.buckets_moved += moved
        self.states_transferred += transferred
        return moved, transferred
