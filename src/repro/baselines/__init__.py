"""Comparison baselines.

* The **traditional local architecture** is the library default
  (``LocalDatapath``); helpers here measure it.
* :class:`SiriusPool` models the Sirius design the paper contrasts
  against (§2.3.3, §8): a dedicated DPU pool with primary/backup in-line
  state replication (packet ping-pong halves new-connection capacity) and
  bucket-based load migration (state transfer needed for long-lived
  flows).
"""

from repro.baselines.sirius import BucketMigration, SiriusPool

__all__ = ["SiriusPool", "BucketMigration"]
