"""nezha-repro: a simulation-backed reproduction of *Nezha: SmartNIC-Based
Virtual Switch Load Sharing* (Li et al., SIGCOMM 2025).

Package map (see README.md for the tour):

* :mod:`repro.sim` — discrete-event kernel;
* :mod:`repro.net` — wire formats and the packet model;
* :mod:`repro.fabric` — the leaf-spine underlay;
* :mod:`repro.vswitch` — the SmartNIC vSwitch (slow/fast path, tables);
* :mod:`repro.host` — servers, SmartNICs, tenant VMs, guest TCP;
* :mod:`repro.controller` — gateway, health monitor, placement, controller;
* :mod:`repro.core` — **Nezha itself**: BE/FE split, offload workflows;
* :mod:`repro.middlebox` — LB / NAT gateway / transit router;
* :mod:`repro.baselines` — local-only and Sirius-style comparisons;
* :mod:`repro.workloads` — traffic generators and the fleet model;
* :mod:`repro.metrics` — percentiles, time series, rate meters;
* :mod:`repro.experiments` — one harness per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
