"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """The discrete-event engine was driven into an invalid configuration."""


class ResourceExhausted(ReproError):
    """A simulated resource (CPU budget, memory budget, table) ran out."""


class PacketError(ReproError):
    """A packet could not be encoded, decoded, or processed."""


class DecodeError(PacketError):
    """Raised when bytes on the wire do not parse as the expected header."""


class TableError(ReproError):
    """A rule/flow/session table operation failed."""


class TableFull(TableError, ResourceExhausted):
    """A table rejected an insert because its capacity is exhausted."""


class ConfigError(ReproError):
    """The control plane was asked to apply an inconsistent configuration."""


class TopologyError(ReproError):
    """The underlay topology is malformed or a path does not exist."""


class OffloadError(ReproError):
    """A Nezha offload/fallback/scaling workflow could not complete."""
