"""Flow-level FE selection: plain 5-tuple hashing (§3.2.3, §7.5).

No consistent hashing (FEs are stateless, so reassignment just costs one
rule-table lookup) and no symmetric hashing (state lives on the BE, which
both directions traverse). Skew remedies from §7.5:

* :meth:`FeSelector.reseed` — reconfigure the hash at the source side;
* :meth:`FeSelector.pin` — give an elephant flow a dedicated FE.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.net.five_tuple import FiveTuple
from repro.vswitch.rule_tables import Location


class FeSelector:
    """Hash-based flow→FE assignment with reseed and pinning."""

    def __init__(self, locations: Optional[List[Location]] = None,
                 seed: int = 0) -> None:
        self.locations: List[Location] = list(locations or [])
        self.seed = seed
        self._pins: Dict[FiveTuple, Location] = {}

    def __len__(self) -> int:
        return len(self.locations)

    def add(self, location: Location) -> None:
        if location in self.locations:
            raise ConfigError(f"{location} already in the FE set")
        self.locations.append(location)

    def remove(self, location: Location) -> None:
        self.locations.remove(location)
        self._pins = {ft: loc for ft, loc in self._pins.items()
                      if loc != location}

    def pick(self, ft: FiveTuple) -> Location:
        """The FE for this flow (pin override, else 5-tuple hash)."""
        if not self.locations:
            raise ConfigError("no FEs available")
        pinned = self._pins.get(ft)
        if pinned is not None:
            return pinned
        return self.locations[ft.hash(self.seed) % len(self.locations)]

    def reseed(self, seed: int) -> None:
        """Change the hash seed to redistribute flows (cache misses on the
        new FEs simply re-run the rule-table lookup)."""
        self.seed = seed

    def pin(self, ft: FiveTuple, location: Location) -> None:
        """Dedicate an FE to an elephant flow (§7.5)."""
        if location not in self.locations:
            raise ConfigError(f"{location} is not an active FE")
        self._pins[ft] = location

    def unpin(self, ft: FiveTuple) -> None:
        self._pins.pop(ft, None)

    def share_of(self, flows: List[FiveTuple]) -> Dict[Location, int]:
        """How many of ``flows`` each FE would receive (skew diagnostics)."""
        counts: Dict[Location, int] = {loc: 0 for loc in self.locations}
        for ft in flows:
            counts[self.pick(ft)] += 1
        return counts
