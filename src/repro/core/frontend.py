"""The vNIC frontend (FE): stateless rule tables + cached flows on an idle
SmartNIC.

One :class:`FrontendInstance` per (offloaded vNIC, hosting vSwitch). The
instance owns a *complete copy* of the vNIC's rule tables (§3.2.3 — no
cross-FE lookups) and caches flows in the host vSwitch's session table as
``FLOWS_ONLY`` entries. It is completely stateless: killing an FE loses
nothing but cache.

* **TX from BE** — combine the carried state with cached pre-actions, run
  the *same* ``process_pkt``, forward to the real destination. On a cache
  miss the rule lookup may reveal rule-table-involved state differing from
  the carried one → emit a designated notify packet to the BE (§3.2.2).
* **RX from anywhere** — look up (or compute) pre-actions, stamp them (and
  any state-init info, e.g. the overlay source for stateful decap §5.2)
  into the packet, relay to the BE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import TableFull
from repro.net.addr import IPv4Address
from repro.telemetry import spans as _spans
from repro.net.ipv4 import IPv4Header
from repro.net.packet import Packet
from repro.net.vxlan import VxlanHeader
from repro.vswitch.actions import Direction, process_pkt
from repro.vswitch.rule_tables import Location, LookupContext
from repro.vswitch.session_table import EntryMode
from repro.vswitch.slow_path import SlowPath
from repro.vswitch.vnic import Vnic
from repro.vswitch.vswitch import VSwitch
from repro.core.header import (KIND_NOTIFY, KIND_RX, NezhaMeta,
                               build_nezha_hop)


@dataclass
class FrontendStats:
    tx_processed: int = 0
    rx_relayed: int = 0
    flow_cache_hits: int = 0
    flow_cache_misses: int = 0
    acl_drops: int = 0
    notifies_sent: int = 0
    flow_insert_failures: int = 0
    inactive_drops: int = 0        # arrivals after teardown began
    no_preaction_drops: int = 0    # lookup yielded nothing to apply


class FrontendInstance:
    """FE logic for one offloaded vNIC on one hosting vSwitch."""

    def __init__(self, vswitch: VSwitch, vnic: Vnic, slow_path: SlowPath,
                 be_location: Location,
                 suppress_redundant_notifies: bool = True) -> None:
        self.vswitch = vswitch
        self.vnic = vnic                # descriptor of the *offloaded* vNIC
        self.slow_path = slow_path      # this FE's complete table copy
        self.be_location = be_location
        self.suppress_redundant_notifies = suppress_redundant_notifies
        self.stats = FrontendStats()
        self.active = True
        # Set while a graceful retirement's grace period runs: the FE is
        # no longer in its handle's FE set but still serves in-flight
        # traffic (invariant checks exempt it from orphan detection).
        self.retiring = False
        # Charge the remote copy of the rule tables to this SmartNIC.
        self.mem_tag = f"fe_rules:{vnic.vnic_id}"
        vswitch.mem.alloc(self.mem_tag, vnic.table_memory_bytes())

    def location(self) -> Location:
        return Location(self.vswitch.server.underlay_ip,
                        self.vswitch.server.mac)

    def teardown(self) -> None:
        """Remove this FE: free table memory and drop its cached flows."""
        self.active = False
        self.vswitch.mem.free_all(self.mem_tag)
        self.vswitch.session_table.remove_vni(self.vnic.vni,
                                              EntryMode.FLOWS_ONLY)

    def invalidate_flows(self) -> int:
        """Rule-table change: drop cached flows; they regenerate on demand
        (§3.2.2)."""
        return self.vswitch.session_table.remove_vni(self.vnic.vni,
                                                     EntryMode.FLOWS_ONLY)

    # -- flow cache -------------------------------------------------------------

    def _flows_for(self, packet: Packet, direction: Direction):
        """Cached pre-actions for this flow, computing them on a miss.

        Returns (pre_actions, cycles, was_miss) — pre_actions is None only
        when the host's memory rejected even a flows-only insert.
        """
        vs = self.vswitch
        cm = vs.cost_model
        ft = packet.five_tuple()
        nbytes = packet.wire_length
        entry = vs.session_table.lookup(self.vnic.vni, ft)
        if entry is not None and entry.pre_actions is not None:
            self.stats.flow_cache_hits += 1
            cycles = cm.fast_path_cycles + nbytes * cm.cycles_per_byte
            return entry.pre_actions, cycles, False
        self.stats.flow_cache_misses += 1
        ctx = LookupContext(ft if direction is Direction.TX else ft.reversed(),
                            vni=self.vnic.vni, packet_bytes=nbytes)
        pre_actions, lookup_cycles = self.slow_path.lookup(ctx)
        vs.stats.slow_path_lookups += 1
        try:
            vs.session_table.insert(self.vnic.vni, ft, pre_actions, None,
                                    vs.engine.now, EntryMode.FLOWS_ONLY)
        except TableFull:
            # Degrade gracefully: process this packet without caching.
            self.stats.flow_insert_failures += 1
        cycles = (lookup_cycles + cm.flow_insert_cycles
                  + nbytes * cm.cycles_per_byte)
        return pre_actions, cycles, True

    # -- TX from the BE --------------------------------------------------------------

    def handle_from_be(self, packet: Packet, meta: NezhaMeta) -> None:
        vs = self.vswitch
        cm = vs.cost_model
        if _spans.ACTIVE:
            _spans.hop(packet, "fe_rx", vs.engine.now)
        state = meta.state
        if state is None or not self.active:
            self.stats.inactive_drops += 1
            return
        pre_actions, cycles, was_miss = self._flows_for(packet, Direction.TX)
        if pre_actions is None:
            self.stats.no_preaction_drops += 1
            return

        def complete():
            from repro.vswitch.vswitch import _qos_admits
            if not _qos_admits(vs, self.vnic, pre_actions.tx,
                               packet.wire_length, vnic_level=False):
                return
            self.stats.tx_processed += 1
            # Notify the BE when the rule lookup revealed a different
            # rule-table-involved state than the packet carried (§3.2.2).
            if was_miss:
                lookup_policy = pre_actions.tx.stats_policy
                if (not self.suppress_redundant_notifies
                        or lookup_policy != state.stats_policy):
                    self._send_notify(packet, lookup_policy)
            action = process_pkt(Direction.TX, pre_actions, state,
                                 packet.wire_length)
            if action.is_drop:
                # The BE is unaware of the drop and keeps its state; short
                # aging for embryonic sessions reclaims it (§5.1, §7.3).
                self.stats.acl_drops += 1
                return
            if pre_actions.tx.nat_src is not None:
                packet.inner_ipv4().src = pre_actions.tx.nat_src
                packet.invalidate_flow_cache()
            if (self.vnic.stateful_decap
                    and state.decap_overlay_src is not None):
                # §5.2: the response must return to the recorded overlay
                # source (the LB), not to the mapping-table destination.
                action.next_hop_ip = state.decap_overlay_src
                action.next_hop_mac = None
            vs.forward_overlay(packet, action)

        vs.charge(cycles + cm.encap_cycles, complete)

    def _send_notify(self, packet: Packet, policy) -> None:
        vs = self.vswitch
        self.stats.notifies_sent += 1
        meta = NezhaMeta(kind=KIND_NOTIFY, vnic_id=self.vnic.vnic_id,
                         notify_five_tuple=packet.five_tuple(),
                         notify_policy=policy)
        hop = build_nezha_hop(vs.server.underlay_ip, vs.server.mac,
                              self.be_location, meta)
        vs.charge(vs.cost_model.notify_cycles,
                  lambda: vs.server.send_to_fabric(hop))

    # -- RX from remote senders ----------------------------------------------------------

    def handle_overlay_rx(self, packet: Packet, vni: int,
                          overlay_src: Optional[IPv4Address] = None) -> bool:
        """Consume a decapped overlay arrival addressed to the fronted vNIC.

        ``overlay_src`` is the outer source IP captured before decap
        (§3.2.2: "RX packets may lose information... after being processed
        by the FE"); it seeds the stateful-decap state. Returns False when
        this instance is not responsible (wrong VNI or wrong inner
        destination), letting the vSwitch count the drop.
        """
        if not self.active or vni != self.vnic.vni:
            return False
        vs = self.vswitch
        cm = vs.cost_model
        inner_ip = packet.expect(IPv4Header)
        if inner_ip.dst != self.vnic.tenant_ip:
            # NAT44 alias: ingress may target the vNIC's external address.
            nat = self.slow_path.table("nat44")
            internal = nat.internal_for(inner_ip.dst) if nat else None
            if internal != self.vnic.tenant_ip or internal is None:
                return False
            packet.meta["nat_original_dst"] = inner_ip.dst
            inner_ip.dst = internal
            packet.invalidate_flow_cache()
        pre_actions, cycles, _was_miss = self._flows_for(packet, Direction.RX)
        if pre_actions is None:
            self.stats.no_preaction_drops += 1
            return True

        def complete():
            self.stats.rx_relayed += 1
            if _spans.ACTIVE:
                _spans.hop(packet, "fe_relay", vs.engine.now)
            meta = NezhaMeta(kind=KIND_RX, vnic_id=self.vnic.vnic_id,
                             pre_actions=pre_actions)
            if self.vnic.stateful_decap and overlay_src is not None:
                meta.overlay_src = IPv4Address(overlay_src)
            hop = build_nezha_hop(vs.server.underlay_ip, vs.server.mac,
                                  self.be_location, meta, inner=packet,
                                  entropy=packet.five_tuple().hash())
            vs.server.send_to_fabric(hop)

        vs.charge(cycles + cm.state_encode_cycles + cm.encap_cycles, complete)
        return True
