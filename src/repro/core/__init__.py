"""Nezha: distributed vSwitch load sharing (the paper's contribution).

The architecture (§3): a high-demand vNIC's **stateless** rule tables and
cached flows move to *frontends* (FEs) on idle SmartNICs; per-session
**state** stays on the *backend* (BE, the vNIC's own SmartNIC) in a single
copy. Packets carry the missing input across the BE↔FE hop in NSH context
TLVs, so no state is ever synchronized or transferred:

* TX: BE stamps its state into the packet → FE combines it with cached
  pre-actions and forwards to the real destination;
* RX: senders reach an FE directly (hash-spread via the vNIC-server
  table) → FE stamps pre-actions into the packet → BE combines them with
  local state and delivers.

Public surface::

    from repro.core import NezhaAgent, NezhaOrchestrator, FeSelector
"""

from repro.core.agent import NezhaAgent
from repro.core.header import NezhaMeta, build_nezha_hop
from repro.core.load_balancer import FeSelector
from repro.core.backend import BackendInstance
from repro.core.frontend import FrontendInstance
from repro.core.offload import NezhaOrchestrator, OffloadHandle

__all__ = [
    "NezhaAgent",
    "NezhaMeta",
    "build_nezha_hop",
    "FeSelector",
    "BackendInstance",
    "FrontendInstance",
    "NezhaOrchestrator",
    "OffloadHandle",
]
