"""The Nezha agent: per-vSwitch registry and NSH demultiplexer.

One agent per participating vSwitch. It owns the vSwitch's Nezha hooks:

* the NSH handler (UDP/4790 arrivals) — routed by the DIRECTION TLV to a
  hosted :class:`FrontendInstance` (TX-ward) or
  :class:`BackendInstance` (RX-ward / notify);
* the overlay fallback — VXLAN arrivals for vNICs *fronted* (not hosted)
  here.

A single vSwitch can simultaneously back its own hot vNICs and front other
servers' — that is the whole point of reusing idle SmartNICs (Fig 6).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError
from repro.net.packet import Packet
from repro.core.backend import BackendInstance
from repro.core.frontend import FrontendInstance
from repro.core.header import (KIND_NOTIFY, KIND_RX, KIND_TX,
                               unwrap_nezha_hop)
from repro.vswitch.vswitch import VSwitch


class NezhaAgent:
    """Nezha participation for one vSwitch."""

    def __init__(self, vswitch: VSwitch) -> None:
        self.vswitch = vswitch
        self.backends: Dict[int, BackendInstance] = {}
        self.frontends: Dict[int, FrontendInstance] = {}
        vswitch.nsh_handler = self._on_nsh
        vswitch.overlay_fallback = self._on_overlay_fallback
        self.unknown_nsh_drops = 0

    # -- registration ---------------------------------------------------------

    def register_backend(self, backend: BackendInstance) -> None:
        vnic_id = backend.vnic.vnic_id
        if vnic_id in self.backends:
            raise ConfigError(f"BE for vNIC {vnic_id} already registered")
        self.backends[vnic_id] = backend
        self.vswitch.set_datapath(vnic_id, backend)

    def unregister_backend(self, vnic_id: int) -> Optional[BackendInstance]:
        backend = self.backends.pop(vnic_id, None)
        if backend is not None:
            self.vswitch.set_datapath(vnic_id, None)
        return backend

    def register_frontend(self, frontend: FrontendInstance) -> None:
        vnic_id = frontend.vnic.vnic_id
        if vnic_id in self.frontends:
            raise ConfigError(f"FE for vNIC {vnic_id} already hosted here")
        self.frontends[vnic_id] = frontend

    def unregister_frontend(self, vnic_id: int) -> Optional[FrontendInstance]:
        frontend = self.frontends.pop(vnic_id, None)
        if frontend is not None:
            frontend.teardown()
        return frontend

    # -- dataplane hooks ----------------------------------------------------------

    def _on_nsh(self, packet: Packet) -> None:
        meta = unwrap_nezha_hop(packet)
        if meta.kind == KIND_TX:
            frontend = self.frontends.get(meta.vnic_id)
            if frontend is None:
                self.unknown_nsh_drops += 1
                return
            frontend.handle_from_be(packet, meta)
        elif meta.kind == KIND_RX:
            backend = self.backends.get(meta.vnic_id)
            if backend is None:
                self.unknown_nsh_drops += 1
                return
            backend.handle_from_fe(packet, meta)
        elif meta.kind == KIND_NOTIFY:
            backend = self.backends.get(meta.vnic_id)
            if backend is None:
                self.unknown_nsh_drops += 1
                return
            backend.handle_notify(meta)
        else:
            self.unknown_nsh_drops += 1

    def _on_overlay_fallback(self, packet: Packet, vni: int,
                             overlay_src=None) -> bool:
        for frontend in self.frontends.values():
            if frontend.handle_overlay_rx(packet, vni, overlay_src):
                return True
        return False

    def fe_load(self) -> float:
        """Fraction of this vSwitch's recent CPU spent on hosted FEs.

        Approximated by the share of session-table entries that are cached
        flows for fronted vNICs — good enough for the controller's
        "remote > local?" scale-in/out decision (Fig 8).
        """
        fronted_vnis = {fe.vnic.vni for fe in self.frontends.values()}
        total = len(self.vswitch.session_table)
        if total == 0:
            return 1.0 if fronted_vnis else 0.0
        remote = sum(1 for entry in self.vswitch.session_table
                     if entry.vni in fronted_vnis)
        return remote / total
