"""The vNIC backend (BE): state keeper and VM-side endpoint.

Installed as the offloaded vNIC's datapath on its home vSwitch. The BE:

* **TX** — initializes/updates local state, stamps it into the packet, and
  relays to an FE chosen by 5-tuple hash (one extra hop);
* **RX via FE** — combines the carried pre-actions with local state and
  delivers to the VM (``process_pkt`` is the same code the local path runs);
* **RX direct** (dual-running stage) — senders that have not yet learned
  the FE locations still hit the BE; while the rule tables are retained the
  BE processes these locally, afterwards they are dropped and counted
  (§4.2.1);
* **notify** — applies rule-table-involved state updates sent by FEs
  (§3.2.2);
* hardware-accelerated per-flow TX logic keeps BE cycles tiny (§7.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TableFull
from repro.net.packet import Packet
from repro.telemetry import spans as _spans
from repro.net.tcp import TcpHeader
from repro.vswitch.actions import Direction, process_pkt
from repro.vswitch.rule_tables import LookupContext
from repro.vswitch.session_table import EntryMode
from repro.vswitch.state import SessionState
from repro.vswitch.tcp_fsm import tcp_transition
from repro.vswitch.vnic import Vnic
from repro.vswitch.vswitch import Datapath, VSwitch
from repro.core.header import NezhaMeta, KIND_TX, build_nezha_hop
from repro.core.load_balancer import FeSelector


@dataclass
class BackendStats:
    tx_relayed: int = 0
    rx_from_fe: int = 0
    rx_direct_dual_running: int = 0
    rx_direct_dropped: int = 0
    notifies_applied: int = 0
    acl_drops: int = 0
    state_full_drops: int = 0
    states_created: int = 0
    invalid_meta_drops: int = 0    # NSH hop arrived without pre-actions


class BackendInstance(Datapath):
    """Per-offloaded-vNIC BE logic on the home vSwitch."""

    def __init__(self, vswitch: VSwitch, vnic: Vnic,
                 selector: FeSelector,
                 packet_level_lb: bool = False) -> None:
        self.vswitch = vswitch
        self.vnic = vnic
        self.selector = selector
        self.stats = BackendStats()
        # Dual-running: rule tables are still present locally; direct RX is
        # processed with a slow-path lookup (no flow caching).
        self.tables_released = False
        # Ablation (§3.2.3): spraying packets of one flow across FEs would
        # share load better but destroys cache friendliness — duplicated
        # lookups and duplicated cached flows. Nezha rejects this; the
        # flag exists to quantify why.
        self.packet_level_lb = packet_level_lb
        self._pkt_counter = 0

    # -- shared state handling ---------------------------------------------------

    def _state_for(self, packet: Packet, direction: Direction,
                   create: bool) -> Optional[SessionState]:
        vs = self.vswitch
        ft = packet.five_tuple()
        entry = vs.session_table.lookup(self.vnic.vni, ft)
        if entry is not None and entry.state is not None:
            return entry.state
        if not create:
            return None
        state = SessionState(first_direction=direction)
        try:
            vs.session_table.insert(self.vnic.vni, ft, None, state,
                                    vs.engine.now, EntryMode.STATE_ONLY)
        except TableFull:
            self.stats.state_full_drops += 1
            return None
        self.stats.states_created += 1
        return state

    def _advance(self, state: SessionState, direction: Direction,
                 packet: Packet) -> None:
        tcp = packet.find(TcpHeader)
        if tcp is not None:
            from_initiator = state.first_direction == direction
            state.tcp_state = tcp_transition(state.tcp_state,
                                             from_initiator, tcp.flags)
        state.touch(self.vswitch.engine.now)

    # -- TX: VM → BE → FE -----------------------------------------------------------

    def handle_tx(self, vnic: Vnic, packet: Packet) -> None:
        vs = self.vswitch
        cm = vs.cost_model
        ft = packet.five_tuple()
        if len(self.selector) == 0:
            # Every FE is gone (mass failure before replacement): the BE
            # cannot process TX alone once tables are released.
            self.stats.rx_direct_dropped += 1
            return
        state = self._state_for(packet, Direction.TX, create=True)
        if state is None:
            return
        new_state = state.packets_tx == 0 and state.created_at == vs.engine.now
        cycles = (cm.be_fastpath_cycles + cm.state_encode_cycles
                  + packet.wire_length * cm.cycles_per_byte)
        if new_state:
            cycles += cm.be_state_insert_cycles

        def complete():
            from repro.vswitch.vswitch import _qos_admits
            if not _qos_admits(vs, vnic, None, packet.wire_length):
                return
            self._advance(state, Direction.TX, packet)
            if self.packet_level_lb and len(self.selector.locations) > 0:
                self._pkt_counter += 1
                fe = self.selector.locations[
                    self._pkt_counter % len(self.selector.locations)]
            else:
                fe = self.selector.pick(ft)
            if _spans.ACTIVE:
                _spans.hop(packet, "be_tx", vs.engine.now)
            meta = NezhaMeta(kind=KIND_TX, vnic_id=self.vnic.vnic_id,
                             state=state)
            hop = build_nezha_hop(vs.server.underlay_ip, vs.server.mac,
                                  fe, meta, inner=packet,
                                  entropy=ft.hash())
            self.stats.tx_relayed += 1
            vs.server.send_to_fabric(hop)

        vs.charge(cycles, complete)

    # -- RX via FE: NSH-carried pre-actions -------------------------------------------

    def handle_from_fe(self, packet: Packet, meta: NezhaMeta) -> None:
        vs = self.vswitch
        cm = vs.cost_model
        if _spans.ACTIVE:
            _spans.hop(packet, "be_rx", vs.engine.now)
        pre_actions = meta.pre_actions
        if pre_actions is None:
            self.stats.invalid_meta_drops += 1
            return
        state = self._state_for(packet, Direction.RX, create=True)
        if state is None:
            return
        # §3.2.2: the FE cannot tell whether the BE's rule-table-involved
        # state differs, so the carried value is applied without verification.
        state.stats_policy = pre_actions.rx.stats_policy
        if meta.overlay_src is not None and self.vnic.stateful_decap:
            state.decap_overlay_src = meta.overlay_src
        new_state = state.packets_rx == 0 and state.created_at == vs.engine.now
        cycles = (cm.be_fastpath_cycles
                  + packet.wire_length * cm.cycles_per_byte)
        if new_state:
            cycles += cm.be_state_insert_cycles

        def complete():
            self._advance(state, Direction.RX, packet)
            action = process_pkt(Direction.RX, pre_actions, state,
                                 packet.wire_length)
            if action.is_drop:
                self.stats.acl_drops += 1
                return
            self.stats.rx_from_fe += 1
            vs.stats.delivered += 1
            self.vnic.deliver(packet)

        vs.charge(cycles, complete)

    # -- RX direct (dual-running / stragglers) -------------------------------------------

    def handle_rx(self, vnic: Vnic, packet: Packet,
                  overlay_src=None) -> None:
        vs = self.vswitch
        if self.tables_released:
            # Final stage: the BE no longer has rule tables; in-flight
            # packets sent directly here are lost (retransmission recovers).
            self.stats.rx_direct_dropped += 1
            vs.trace.emit("nezha.direct_rx_drop", vswitch=vs.name,
                          vnic=vnic.vnic_id)
            return
        # Dual-running: process with a fresh slow-path lookup (flows are no
        # longer cached locally), state handled exactly as the local path.
        cm = vs.cost_model
        ft = packet.five_tuple()
        ctx = LookupContext(ft.reversed(), vni=vnic.vni,
                            packet_bytes=packet.wire_length)
        pre_actions, lookup_cycles = vnic.slow_path.lookup(ctx)
        vs.stats.slow_path_lookups += 1
        state = self._state_for(packet, Direction.RX, create=True)
        if state is None:
            return
        state.stats_policy = pre_actions.rx.stats_policy
        if vnic.stateful_decap and overlay_src is not None:
            state.decap_overlay_src = overlay_src

        def complete():
            self._advance(state, Direction.RX, packet)
            action = process_pkt(Direction.RX, pre_actions, state,
                                 packet.wire_length)
            if action.is_drop:
                self.stats.acl_drops += 1
                return
            self.stats.rx_direct_dual_running += 1
            vs.stats.delivered += 1
            self.vnic.deliver(packet)

        vs.charge(lookup_cycles + packet.wire_length * cm.cycles_per_byte,
                  complete)

    # -- notify packets (§3.2.2) -------------------------------------------------------------

    def handle_notify(self, meta: NezhaMeta) -> None:
        vs = self.vswitch
        ft = meta.notify_five_tuple
        if ft is None or meta.notify_policy is None:
            return

        def complete():
            entry = vs.session_table.lookup(self.vnic.vni, ft)
            if entry is not None and entry.state is not None:
                entry.state.stats_policy = meta.notify_policy
                self.stats.notifies_applied += 1

        vs.charge(vs.cost_model.notify_cycles, complete)
