"""Nezha metadata carried in NSH context TLVs (§3.2.1).

Three packet kinds cross the BE↔FE hop, distinguished by the DIRECTION TLV:

* ``T`` — a TX data packet, BE→FE, carrying the session STATE;
* ``R`` — an RX data packet, FE→BE, carrying PRE_ACTIONS and, when the NF
  needs it, STATE_INIT info (e.g. the overlay source for stateful decap);
* ``N`` — a designated notify packet, FE→BE, updating rule-table-involved
  state (§3.2.2).

:func:`build_nezha_hop` wraps an inner tenant packet in
``Eth / IPv4 / UDP(4790) / NSH(meta)`` addressed to the peer's underlay.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import DecodeError
from repro.net.addr import IPv4Address, MacAddress
from repro.net.ethernet import EthernetHeader
from repro.net.five_tuple import FiveTuple
from repro.net.ipv4 import IPv4Header
from repro.net.nsh import NshContext, NshHeader
from repro.net.packet import NSH_PORT, Packet
from repro.net.udp import UdpHeader
from repro.net.five_tuple import PROTO_UDP
from repro.vswitch.actions import PreAction, PreActions, Verdict
from repro.vswitch.rule_tables import Location
from repro.vswitch.state import SessionState, StatsPolicy

KIND_TX = b"T"
KIND_RX = b"R"
KIND_NOTIFY = b"N"


def encode_pre_actions(pre: PreActions) -> bytes:
    """Pack the fields the BE needs to finish RX processing (8 bytes)."""
    return (pre.tx.verdict.to_wire() + pre.rx.verdict.to_wire()
            + (b"\x01" if pre.tx.stateful_acl else b"\x00")
            + (b"\x01" if pre.rx.stateful_acl else b"\x00")
            + pre.rx.stats_policy.to_wire()
            + bytes([pre.rx.qos_class & 0xFF])
            + b"\x00\x00")


def decode_pre_actions(data: bytes) -> PreActions:
    if len(data) < 8:
        raise DecodeError(f"pre-actions blob needs 8B, got {len(data)}")
    tx = PreAction(verdict=Verdict.from_wire(data[0:1]),
                   stateful_acl=bool(data[2]))
    rx = PreAction(verdict=Verdict.from_wire(data[1:2]),
                   stateful_acl=bool(data[3]),
                   stats_policy=StatsPolicy.from_wire(data[4:5]),
                   qos_class=data[5])
    tx.stats_policy = rx.stats_policy
    return PreActions(tx, rx)


def encode_five_tuple(ft: FiveTuple) -> bytes:
    return (ft.src_ip.to_bytes() + ft.dst_ip.to_bytes() + bytes([ft.proto])
            + struct.pack("!HH", ft.src_port, ft.dst_port))


def decode_five_tuple(data: bytes) -> FiveTuple:
    if len(data) < 13:
        raise DecodeError(f"five-tuple blob needs 13B, got {len(data)}")
    src = IPv4Address.from_bytes(data[0:4])
    dst = IPv4Address.from_bytes(data[4:8])
    proto = data[8]
    sport, dport = struct.unpack("!HH", data[9:13])
    return FiveTuple(src, dst, proto, sport, dport)


@dataclass
class NezhaMeta:
    """Decoded Nezha TLV bundle."""

    kind: bytes                     # KIND_TX / KIND_RX / KIND_NOTIFY
    vnic_id: int
    state: Optional[SessionState] = None        # TX-ward
    pre_actions: Optional[PreActions] = None    # RX-ward
    overlay_src: Optional[IPv4Address] = None   # STATE_INIT for decap (§5.2)
    notify_five_tuple: Optional[FiveTuple] = None
    notify_policy: Optional[StatsPolicy] = None

    def to_context(self) -> NshContext:
        ctx = NshContext()
        ctx.put(NshContext.DIRECTION, self.kind)
        ctx.put(NshContext.VNIC, struct.pack("!I", self.vnic_id))
        if self.state is not None:
            ctx.put(NshContext.STATE, self.state.to_wire())
        if self.pre_actions is not None:
            ctx.put(NshContext.PRE_ACTIONS, encode_pre_actions(self.pre_actions))
        if self.overlay_src is not None:
            ctx.put(NshContext.STATE_INIT, self.overlay_src.to_bytes())
        if self.notify_five_tuple is not None:
            payload = encode_five_tuple(self.notify_five_tuple)
            payload += (self.notify_policy or StatsPolicy.NONE).to_wire()
            ctx.put(NshContext.NOTIFY, payload)
        return ctx

    @classmethod
    def from_context(cls, ctx: NshContext) -> "NezhaMeta":
        kind = ctx.get(NshContext.DIRECTION)
        (vnic_id,) = struct.unpack("!I", ctx.get(NshContext.VNIC))
        meta = cls(kind=kind, vnic_id=vnic_id)
        if NshContext.STATE in ctx:
            meta.state = SessionState.from_wire(ctx.get(NshContext.STATE))
        if NshContext.PRE_ACTIONS in ctx:
            meta.pre_actions = decode_pre_actions(
                ctx.get(NshContext.PRE_ACTIONS))
        if NshContext.STATE_INIT in ctx:
            meta.overlay_src = IPv4Address.from_bytes(
                ctx.get(NshContext.STATE_INIT))
        if NshContext.NOTIFY in ctx:
            blob = ctx.get(NshContext.NOTIFY)
            meta.notify_five_tuple = decode_five_tuple(blob[:13])
            meta.notify_policy = StatsPolicy.from_wire(blob[13:14])
        return meta


def build_nezha_hop(src_ip: IPv4Address, src_mac: MacAddress,
                    dst: Location, meta: NezhaMeta,
                    inner: Optional[Packet] = None,
                    entropy: int = 0) -> Packet:
    """Wrap ``inner`` (or nothing, for a notify) for the BE↔FE hop."""
    nsh = NshHeader(spi=meta.vnic_id & 0xFFFFFF, si=255,
                    context=meta.to_context())
    inner_layers = list(inner.layers) if inner is not None else []
    inner_payload = inner.payload if inner is not None else b""
    inner_len = inner.wire_length if inner is not None else 0
    udp_len = UdpHeader.wire_length + nsh.wire_length + inner_len
    total = IPv4Header.wire_length + udp_len
    src_port = 49152 + (entropy & 0x3FFF)
    layers = [
        EthernetHeader(dst.underlay_mac, src_mac),
        IPv4Header(src_ip, dst.underlay_ip, PROTO_UDP, total_length=total),
        UdpHeader(src_port, NSH_PORT, udp_len),
        nsh,
    ] + inner_layers
    meta_dict = dict(inner.meta) if inner is not None else {}
    return Packet(layers, inner_payload, meta_dict)


def unwrap_nezha_hop(packet: Packet) -> NezhaMeta:
    """Strip the hop encapsulation in place; returns the decoded metadata.

    After this call the packet holds only the inner tenant layers (for a
    notify, a placeholder NSH layer remains — notify packets carry no
    tenant payload and are consumed by the BE).
    """
    nsh = packet.find(NshHeader)
    if nsh is None:
        raise DecodeError("not a Nezha hop packet (no NSH layer)")
    meta = NezhaMeta.from_context(nsh.context)
    index = packet.layers.index(nsh)
    if index + 1 < len(packet.layers):
        packet.layers[:index + 1] = []
    else:
        packet.layers[:index] = []  # keep the NSH layer as placeholder
    packet.invalidate_flow_cache()  # layer surgery bypassed Packet.decap
    return meta
