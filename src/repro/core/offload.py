"""Seamless vNIC offload, fallback, scaling, and FE failover (§4.2–4.4).

The :class:`NezhaOrchestrator` executes the control-plane workflows as
engine processes, with explicit dual-running stages:

**Offload** (Fig 7): configure rule tables in the selected FEs → install
the BE datapath (TX immediately relays through FEs; RX direct arrivals are
still processed locally because the rule tables are *retained*) → update
the gateway → wait until every learner has pulled the new entry plus an
in-flight margin → release the BE's rule tables (final stage).

**Fallback** is the mirror image, with the vNIC-server entry pointed back
at the BE, and with session state preserved (STATE_ONLY entries are
promoted lazily by the local datapath).

**Scale-out/in** adds/removes FEs without consistent hashing: flows that
land on a different FE after the change just re-run a rule-table lookup.

**Failover**: a crashed FE is removed from the selector and the gateway
immediately; if the FE set would fall below ``min_fes`` (4 in production,
Appendix B.2), a replacement is requested.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import OffloadError, ResourceExhausted
from repro.sim.engine import Engine, Event
from repro.sim.rng import SeededRng
from repro.sim.trace import Trace
from repro import telemetry as _telemetry
from repro.vswitch.rule_tables import Location
from repro.vswitch.vnic import Vnic
from repro.vswitch.vswitch import VSwitch
from repro.controller.gateway import Gateway
from repro.controller.latency import ControlLatencyModel
from repro.core.agent import NezhaAgent
from repro.core.backend import BackendInstance
from repro.core.frontend import FrontendInstance
from repro.core.load_balancer import FeSelector


class OffloadState(enum.Enum):
    DUAL_RUNNING = "dual_running"
    ACTIVE = "active"
    FALLING_BACK = "falling_back"
    INACTIVE = "inactive"


@dataclass
class OffloadConfig:
    learning_interval: float = 0.2      # vSwitch mapping-learning period
    inflight_margin: float = 0.02       # RTT allowance before table deletion
    min_fes: int = 4                    # floor maintained by failover (§4.4)
    sync_poll: float = 0.02             # learner-sync polling period
    sync_timeout: float = 10.0          # give up waiting for laggard learners
    latency: ControlLatencyModel = field(default_factory=ControlLatencyModel)
    # Control-plane RPC hardening: every workflow stage retries with
    # exponential backoff after ``rpc_timeout`` of silence, then the flow
    # aborts (and rolls back) rather than wedging half-complete.
    rpc_max_attempts: int = 4
    rpc_timeout: float = 0.25
    rpc_backoff_base: float = 0.05
    rpc_backoff_cap: float = 0.4


class OffloadHandle:
    """One offloaded vNIC: its BE, FE set, and lifecycle state."""

    def __init__(self, vnic: Vnic, be_vswitch: VSwitch,
                 backend: BackendInstance, selector: FeSelector) -> None:
        self.vnic = vnic
        self.be_vswitch = be_vswitch
        self.backend = backend
        self.selector = selector
        self.frontends: Dict[Location, FrontendInstance] = {}
        self.state = OffloadState.DUAL_RUNNING
        # Lifecycle history: (virtual time, state name) per transition —
        # the raw material for post-mortem "when did this vNIC activate".
        self.transitions: List[Tuple[float, str]] = []
        self.triggered_at = 0.0
        self.completed_at: Optional[float] = None
        self.completion: Optional[Event] = None
        # True when the offload flow gave up and rolled back; ``completion``
        # still fires (successfully) so waiters are released either way.
        self.failed = False

    def set_state(self, state: "OffloadState", now: float) -> None:
        """Advance the lifecycle, recording the timestamped transition."""
        self.state = state
        self.transitions.append((now, state.value))
        tel = _telemetry.current()
        if tel is not None:
            tel.offload_transition(self, state.value, now)

    @property
    def fe_locations(self) -> List[Location]:
        return list(self.frontends.keys())

    @property
    def fe_vswitches(self) -> List[VSwitch]:
        return [fe.vswitch for fe in self.frontends.values()]

    @property
    def activation_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.triggered_at

    def __repr__(self) -> str:
        return (f"OffloadHandle(vnic={self.vnic.vnic_id}, "
                f"{len(self.frontends)} FEs, {self.state.value})")


class NezhaOrchestrator:
    """Executes Nezha workflows across agents, the gateway, and the fabric."""

    def __init__(self, engine: Engine, gateway: Gateway,
                 rng: Optional[SeededRng] = None,
                 config: Optional[OffloadConfig] = None,
                 trace: Optional[Trace] = None) -> None:
        self.engine = engine
        self.gateway = gateway
        self.rng = rng or SeededRng(0, "orchestrator")
        self.config = config or OffloadConfig()
        self.trace = trace or _telemetry.active_trace(engine) \
            or Trace(lambda: engine.now)
        self.agents: Dict[str, NezhaAgent] = {}
        self.handles: Dict[int, OffloadHandle] = {}
        # Invoked when failover leaves a handle short of FEs; the
        # controller wires this to its placement logic.
        self.need_fe_callback: Optional[
            Callable[[OffloadHandle, int], None]] = None
        # Fault-injection hook, called once per RPC attempt with
        # ``(stage, attempt)``. Return ``None``/``"ok"`` for a normal
        # delivery, ``"drop"`` to lose the RPC, ``"dup"`` to deliver it
        # twice, or ``("delay", seconds)`` for extra latency.
        self.rpc_fault_hook: Optional[Callable[[str, int], object]] = None
        self.rpc_drops = 0
        self.rpc_retries_recovered = 0
        self.rpc_giveups = 0
        self.aborted_offloads = 0

    # -- agents ------------------------------------------------------------------

    def agent_for(self, vswitch: VSwitch) -> NezhaAgent:
        agent = self.agents.get(vswitch.name)
        if agent is None:
            agent = NezhaAgent(vswitch)
            self.agents[vswitch.name] = agent
        return agent

    def _rpc_delay(self) -> float:
        return self.config.latency.sample(self.rng)

    def _rpc(self, stage: str):
        """One control-plane RPC with bounded retry + exponential backoff.

        Subroutine for workflow processes (``yield from``). Returns the
        number of times the RPC was *delivered*: 0 after exhausting
        ``rpc_max_attempts`` (the caller must abort/degrade), 1 normally,
        2 when the network duplicated it — callers apply their mutation
        once per delivery, so idempotent re-entry is exercised, not just
        assumed.
        """
        cfg = self.config
        backoff = cfg.rpc_backoff_base
        for attempt in range(cfg.rpc_max_attempts):
            verdict, extra_delay = "ok", 0.0
            if self.rpc_fault_hook is not None:
                raw = self.rpc_fault_hook(stage, attempt)
                if isinstance(raw, tuple):
                    verdict, extra_delay = raw
                elif raw:
                    verdict = raw
            if verdict == "drop":
                self.rpc_drops += 1
                self.trace.emit("nezha.rpc_drop", stage=stage,
                                attempt=attempt)
                yield self.engine.timeout(cfg.rpc_timeout + backoff)
                backoff = min(backoff * 2.0, cfg.rpc_backoff_cap)
                continue
            yield self.engine.timeout(self._rpc_delay() + extra_delay)
            if attempt:
                self.rpc_retries_recovered += 1
                self.trace.emit("nezha.rpc_recovered", stage=stage,
                                attempts=attempt + 1)
            return 2 if verdict == "dup" else 1
        self.rpc_giveups += 1
        self.trace.emit("nezha.rpc_giveup", stage=stage,
                        attempts=cfg.rpc_max_attempts)
        return 0

    # -- offload (§4.2.1) -----------------------------------------------------------

    def offload(self, vnic: Vnic, fe_vswitches: List[VSwitch]) -> OffloadHandle:
        """Start the two-stage offload; returns a handle whose
        ``completion`` event fires when the final stage is reached."""
        if vnic.vnic_id in self.handles:
            raise OffloadError(f"vNIC {vnic.vnic_id} is already offloaded")
        if vnic.host is None:
            raise OffloadError(f"{vnic!r} is not hosted anywhere")
        if not fe_vswitches:
            raise OffloadError("offload needs at least one FE")
        be_vswitch = vnic.host
        if any(fe is be_vswitch for fe in fe_vswitches):
            raise OffloadError("an FE cannot live on the BE's own vSwitch")

        selector = FeSelector()
        backend = BackendInstance(be_vswitch, vnic, selector)
        handle = OffloadHandle(vnic, be_vswitch, backend, selector)
        handle.triggered_at = self.engine.now
        handle.set_state(OffloadState.DUAL_RUNNING, self.engine.now)
        handle.completion = self.engine.event(f"offload-{vnic.vnic_id}")
        self.handles[vnic.vnic_id] = handle
        self.engine.process(self._offload_flow(handle, fe_vswitches),
                            name=f"offload-{vnic.vnic_id}")
        return handle

    def _offload_flow(self, handle: OffloadHandle,
                      fe_vswitches: List[VSwitch]):
        vnic = handle.vnic
        self.trace.emit("nezha.offload_trigger", vnic=vnic.vnic_id,
                        be=handle.be_vswitch.name)
        # 1. Configure the vNIC's rule tables in every selected FE.
        deliveries = yield from self._rpc("offload.configure_fes")
        if deliveries == 0:
            self._abort_offload(handle)
            return
        for _ in range(deliveries):
            for fe_vswitch in fe_vswitches:
                self._create_frontend(handle, fe_vswitch)
        if not handle.frontends:
            # Every target crashed (or ran out of memory) under our feet.
            self._abort_offload(handle)
            return
        # 2. Configure BE/FE locations; the BE datapath takes over (TX now
        #    relays via FEs; direct RX is processed with retained tables).
        deliveries = yield from self._rpc("offload.install_be")
        if deliveries == 0:
            self._abort_offload(handle)
            return
        for _ in range(deliveries):
            self._install_backend(handle)
        # 3. Update the gateway's vNIC-server entry to the FE locations.
        deliveries = yield from self._rpc("offload.update_gateway")
        if deliveries == 0:
            self._abort_offload(handle)
            return
        version = 0
        for _ in range(deliveries):
            version = self.gateway.set_locations(vnic.vni, vnic.tenant_ip,
                                                 handle.fe_locations)
        # Dual-running: wait for every learner, then the in-flight margin.
        yield from self._await_sync(vnic.vni, version)
        yield self.engine.timeout(self.config.inflight_margin)
        # A racing failover may have emptied the FE set (or replaced the
        # handle) while we waited; completing would strand the vNIC.
        if self.handles.get(vnic.vnic_id) is not handle \
                or not handle.frontends:
            self._abort_offload(handle)
            return
        # Final stage: delete local rule tables and cached flows.
        if not vnic.offloaded:
            handle.be_vswitch.release_vnic_tables(vnic.vnic_id)
        handle.backend.tables_released = True
        handle.set_state(OffloadState.ACTIVE, self.engine.now)
        handle.completed_at = self.engine.now
        self.trace.emit("nezha.offload_complete", vnic=vnic.vnic_id,
                        duration=handle.activation_time,
                        fes=len(handle.frontends))
        handle.completion.succeed(handle)

    def _install_backend(self, handle: OffloadHandle) -> None:
        """Stage-2 mutation, idempotent: a duplicated/replayed RPC finds
        the BE already registered and leaves it alone."""
        vnic = handle.vnic
        be_agent = self.agent_for(handle.be_vswitch)
        if be_agent.backends.get(vnic.vnic_id) is not handle.backend:
            if vnic.vnic_id in be_agent.backends:
                be_agent.unregister_backend(vnic.vnic_id)
            be_agent.register_backend(handle.backend)
        handle.be_vswitch.session_table.demote_vni(vnic.vni)

    def _abort_offload(self, handle: OffloadHandle) -> None:
        """Roll a half-completed offload back to purely local processing.

        Safe to call from any stage: tears down whatever was built,
        restores tables if they were released, points the gateway back at
        the BE only if we had moved it, and releases completion waiters
        with ``handle.failed`` set (never ``Event.fail`` — a crashing
        waiter would take the whole strict run down with it).
        """
        vnic = handle.vnic
        handle.failed = True
        self.aborted_offloads += 1
        for location in list(handle.frontends):
            self._remove_frontend(handle, location, graceful=False)
        be_agent = self.agent_for(handle.be_vswitch)
        if be_agent.backends.get(vnic.vnic_id) is handle.backend:
            be_agent.unregister_backend(vnic.vnic_id)
        if vnic.offloaded:
            try:
                handle.be_vswitch.restore_vnic_tables(vnic.vnic_id)
            except ResourceExhausted:
                self.trace.emit("nezha.abort_restore_failed",
                                vnic=vnic.vnic_id)
        be_location = Location(handle.be_vswitch.server.underlay_ip,
                               handle.be_vswitch.server.mac)
        entry = self.gateway.lookup(vnic.vni, vnic.tenant_ip)
        if entry is not None and entry.locations != [be_location]:
            self.gateway.set_locations(vnic.vni, vnic.tenant_ip,
                                       [be_location])
        handle.set_state(OffloadState.INACTIVE, self.engine.now)
        if self.handles.get(vnic.vnic_id) is handle:
            self.handles.pop(vnic.vnic_id)
        self.trace.emit("nezha.offload_abort", vnic=vnic.vnic_id)
        if handle.completion is not None and not handle.completion.fired:
            handle.completion.succeed(handle)

    def _create_frontend(self, handle: OffloadHandle,
                         fe_vswitch: VSwitch) -> Optional[FrontendInstance]:
        if any(fe.vswitch is fe_vswitch for fe in handle.frontends.values()):
            # Concurrent scale-outs can race toward the same target; the
            # second request is redundant, not an error.
            self.trace.emit("nezha.fe_already_present",
                            vnic=handle.vnic.vnic_id,
                            vswitch=fe_vswitch.name)
            return None
        if fe_vswitch.crashed:
            # The target died between selection and this RPC landing.
            self.trace.emit("nezha.fe_target_crashed",
                            vnic=handle.vnic.vnic_id,
                            vswitch=fe_vswitch.name)
            return None
        agent = self.agent_for(fe_vswitch)
        if handle.vnic.vnic_id in agent.frontends:
            # A replayed configure RPC: the instance is already installed.
            self.trace.emit("nezha.fe_already_present",
                            vnic=handle.vnic.vnic_id,
                            vswitch=fe_vswitch.name)
            return None
        be_location = Location(handle.be_vswitch.server.underlay_ip,
                               handle.be_vswitch.server.mac)
        try:
            frontend = FrontendInstance(fe_vswitch, handle.vnic,
                                        handle.vnic.slow_path, be_location)
        except ResourceExhausted:
            self.trace.emit("nezha.fe_target_oom",
                            vnic=handle.vnic.vnic_id,
                            vswitch=fe_vswitch.name)
            return None
        agent.register_frontend(frontend)
        location = frontend.location()
        handle.frontends[location] = frontend
        handle.selector.add(location)
        return frontend

    def _await_sync(self, vni: int, version: int):
        deadline = self.engine.now + self.config.sync_timeout
        while not self.gateway.all_learners_synced(vni, version):
            if self.engine.now >= deadline:
                self.trace.emit("nezha.sync_timeout", vni=vni)
                break
            yield self.engine.timeout(self.config.sync_poll)

    # -- fallback (§4.2.2) ---------------------------------------------------------------

    def fallback(self, handle: OffloadHandle) -> Event:
        """Return the vNIC to purely local processing."""
        if handle.state is not OffloadState.ACTIVE:
            raise OffloadError(f"cannot fall back from {handle.state}")
        handle.set_state(OffloadState.FALLING_BACK, self.engine.now)
        done = self.engine.event(f"fallback-{handle.vnic.vnic_id}")
        self.engine.process(self._fallback_flow(handle, done),
                            name=f"fallback-{handle.vnic.vnic_id}")
        return done

    def _fallback_flow(self, handle: OffloadHandle, done: Event):
        vnic = handle.vnic
        self.trace.emit("nezha.fallback_trigger", vnic=vnic.vnic_id)
        # 1. Restore the rule tables locally (dual-running, mirrored).
        deliveries = yield from self._rpc("fallback.restore_tables")
        if deliveries == 0:
            handle.set_state(OffloadState.ACTIVE, self.engine.now)
            done.fail(OffloadError(
                f"fallback of vNIC {vnic.vnic_id}: BE unreachable"))
            return
        try:
            if vnic.offloaded:
                handle.be_vswitch.restore_vnic_tables(vnic.vnic_id)
        except ResourceExhausted:
            handle.set_state(OffloadState.ACTIVE, self.engine.now)
            done.fail(OffloadError(
                f"BE lacks memory to restore vNIC {vnic.vnic_id} tables"))
            return
        handle.backend.tables_released = False
        # 2. Point the gateway back at the BE.
        deliveries = yield from self._rpc("fallback.update_gateway")
        if deliveries == 0:
            # Gateway unreachable: revert to the offloaded steady state
            # (re-release the tables) rather than leaving the BE holding
            # tables while remote senders still target the FEs.
            handle.be_vswitch.release_vnic_tables(vnic.vnic_id)
            handle.backend.tables_released = True
            handle.set_state(OffloadState.ACTIVE, self.engine.now)
            done.fail(OffloadError(
                f"fallback of vNIC {vnic.vnic_id}: gateway unreachable"))
            return
        be_location = Location(handle.be_vswitch.server.underlay_ip,
                               handle.be_vswitch.server.mac)
        version = 0
        for _ in range(deliveries):
            version = self.gateway.set_locations(vnic.vni, vnic.tenant_ip,
                                                 [be_location])
        yield from self._await_sync(vnic.vni, version)
        yield self.engine.timeout(self.config.inflight_margin)
        # 3. Tear down FEs and the BE datapath; local processing resumes
        #    with session state intact (lazy flow promotion).
        for location in list(handle.frontends):
            self._remove_frontend(handle, location, graceful=False)
        be_agent = self.agent_for(handle.be_vswitch)
        if be_agent.backends.get(vnic.vnic_id) is handle.backend:
            be_agent.unregister_backend(vnic.vnic_id)
        handle.set_state(OffloadState.INACTIVE, self.engine.now)
        if self.handles.get(vnic.vnic_id) is handle:
            self.handles.pop(vnic.vnic_id)
        self.trace.emit("nezha.fallback_complete", vnic=vnic.vnic_id)
        done.succeed(handle)

    # -- scaling (§4.3) ----------------------------------------------------------------------

    def scale_out(self, handle: OffloadHandle,
                  fe_vswitches: List[VSwitch]) -> Event:
        """Add FEs to an offloaded vNIC."""
        done = self.engine.event(f"scale-out-{handle.vnic.vnic_id}")

        def _live() -> bool:
            # The handle may fall back (or abort) while this flow is in
            # flight; scaling a retired handle would resurrect orphan FEs.
            return (self.handles.get(handle.vnic.vnic_id) is handle
                    and handle.state in (OffloadState.DUAL_RUNNING,
                                         OffloadState.ACTIVE))

        def flow():
            deliveries = yield from self._rpc("scale_out.configure_fes")
            if deliveries == 0 or not _live():
                done.succeed(handle)
                return
            for _ in range(deliveries):
                for fe_vswitch in fe_vswitches:
                    self._create_frontend(handle, fe_vswitch)
            deliveries = yield from self._rpc("scale_out.update_gateway")
            if deliveries == 0 or not _live() or not handle.fe_locations:
                done.succeed(handle)
                return
            version = 0
            for _ in range(deliveries):
                version = self.gateway.set_locations(
                    handle.vnic.vni, handle.vnic.tenant_ip,
                    handle.fe_locations)
            yield from self._await_sync(handle.vnic.vni, version)
            self.trace.emit("nezha.scale_out", vnic=handle.vnic.vnic_id,
                            fes=len(handle.frontends))
            done.succeed(handle)

        self.engine.process(flow(), name=f"scale-out-{handle.vnic.vnic_id}")
        return done

    def scale_in_vswitch(self, vswitch: VSwitch) -> int:
        """Remove every FE hosted on ``vswitch`` (it needs its resources
        for local traffic); returns the number of FEs removed."""
        removed = 0
        for handle in list(self.handles.values()):
            for location, frontend in list(handle.frontends.items()):
                if frontend.vswitch is vswitch:
                    self._retire_fe(handle, location, graceful=True)
                    removed += 1
            self._request_replacements(handle)
        if removed:
            self.trace.emit("nezha.scale_in", vswitch=vswitch.name,
                            removed=removed)
        return removed

    def _request_replacements(self, handle: OffloadHandle) -> None:
        """Ask the controller for FEs when a handle dropped below the
        minimum — unless the handle is already on its way out (a racing
        fallback/abort), where replacements would become orphans."""
        if handle.state in (OffloadState.FALLING_BACK, OffloadState.INACTIVE):
            return
        shortfall = self.config.min_fes - len(handle.frontends)
        if shortfall > 0 and self.need_fe_callback is not None:
            self.need_fe_callback(handle, shortfall)

    # -- failover (§4.4) -------------------------------------------------------------------------

    def fail_fe(self, vswitch: VSwitch) -> int:
        """A vSwitch hosting FEs crashed: remove its FEs everywhere,
        immediately, and request replacements below the minimum."""
        failed = 0
        for handle in list(self.handles.values()):
            for location, frontend in list(handle.frontends.items()):
                if frontend.vswitch is vswitch:
                    self._retire_fe(handle, location, graceful=False)
                    failed += 1
            self._request_replacements(handle)
        if failed:
            self.trace.emit("nezha.failover", vswitch=vswitch.name,
                            removed=failed)
        return failed

    # -- load-imbalance mitigation (§7.5) ---------------------------------------------------------------

    def reseed_load_balancing(self, handle: OffloadHandle, seed: int) -> None:
        """Reconfigure the source-side hash to redistribute flows.

        Ongoing flows may land on FEs without their cached flow — each
        such miss costs one rule-table lookup, nothing more (stateless
        FEs). Applied both at the BE's selector and at the gateway entry
        consumed by remote senders.
        """
        handle.selector.reseed(seed)
        # Remote senders hash via their learned MappingEntry; the seed is
        # a property of their mapping tables, refreshed by learning.
        for learner in self.gateway.learners:
            for vnic in learner.vswitch.vnics.values():
                table = vnic.slow_path.table("vnic_server_mapping")
                if table is not None:
                    table.hash_seed = seed
        self.trace.emit("nezha.reseed", vnic=handle.vnic.vnic_id, seed=seed)

    def dedicate_fe(self, handle: OffloadHandle, ft,
                    fe_vswitch: VSwitch) -> Event:
        """Give an elephant flow a dedicated FE (§7.5): scale out onto
        ``fe_vswitch`` (if not already an FE) and pin the flow there."""
        existing = [loc for loc, fe in handle.frontends.items()
                    if fe.vswitch is fe_vswitch]
        if existing:
            handle.selector.pin(ft, existing[0])
            done = self.engine.event("dedicate-fe")
            done.succeed(handle)
            return done
        done = self.scale_out(handle, [fe_vswitch])

        def pin_after():
            yield done
            locations = [loc for loc, fe in handle.frontends.items()
                         if fe.vswitch is fe_vswitch]
            if not locations:
                # The scale-out gave up (RPC failure) or the FE was already
                # retired again; the flow keeps its hashed assignment.
                self.trace.emit("nezha.elephant_pin_failed",
                                vnic=handle.vnic.vnic_id)
                return
            handle.selector.pin(ft, locations[0])
            self.trace.emit("nezha.elephant_pinned",
                            vnic=handle.vnic.vnic_id)

        self.engine.process(pin_after(), name="dedicate-fe")
        return done

    # -- BE migration (§7.2: efficient VM live migration) ---------------------------------------------

    def migrate_be(self, handle: OffloadHandle,
                   new_vswitch: VSwitch) -> None:
        """Move an offloaded vNIC's BE to another vSwitch.

        Because the vNIC is offloaded, redirecting traffic needs only a
        BE-location update on the FEs — no gateway/global-routing change,
        no hairpin flows; the paper reports <1 ms to take effect. Session
        states travel with the VM (the migration machinery copies them).
        """
        vnic = handle.vnic
        old_vswitch = handle.be_vswitch
        if new_vswitch is old_vswitch:
            raise OffloadError("BE already lives there")
        if any(fe.vswitch is new_vswitch
               for fe in handle.frontends.values()):
            raise OffloadError("target vSwitch hosts one of this vNIC's FEs")

        # Move the vNIC (and its session states) to the new host.
        self.agent_for(old_vswitch).unregister_backend(vnic.vnic_id)
        old_entries = [entry for entry in old_vswitch.session_table
                       if entry.vni == vnic.vni and entry.state is not None]
        old_vswitch.session_table.remove_vni(vnic.vni)
        old_vswitch.mem.free_all(f"be_meta:{vnic.vnic_id}")
        old_vswitch.vnics.pop(vnic.vnic_id, None)
        old_vswitch._vnic_by_addr.pop((vnic.vni, vnic.tenant_ip.value), None)

        vnic.host = None
        new_vswitch.vnics[vnic.vnic_id] = vnic
        new_vswitch._vnic_by_addr[(vnic.vni, vnic.tenant_ip.value)] = vnic
        vnic.host = new_vswitch
        new_vswitch.mem.alloc(f"be_meta:{vnic.vnic_id}",
                              new_vswitch.cost_model.vnic_be_metadata_bytes)
        from repro.vswitch.session_table import EntryMode
        for entry in old_entries:
            new_vswitch.session_table.insert(
                entry.vni, entry.five_tuple, None, entry.state,
                self.engine.now, EntryMode.STATE_ONLY)

        # New BE instance; FEs redirect by config.
        backend = BackendInstance(new_vswitch, vnic, handle.selector)
        backend.tables_released = True
        backend.packet_level_lb = handle.backend.packet_level_lb
        handle.backend = backend
        handle.be_vswitch = new_vswitch
        self.agent_for(new_vswitch).register_backend(backend)
        new_location = Location(new_vswitch.server.underlay_ip,
                                new_vswitch.server.mac)
        for frontend in handle.frontends.values():
            frontend.be_location = new_location
        self.trace.emit("nezha.be_migrated", vnic=vnic.vnic_id,
                        to=new_vswitch.name)

    # -- FE migration (PAM-style push-neighbor-aside) -------------------------------------------------

    def migrate_fe(self, handle: OffloadHandle, from_vswitch: VSwitch,
                   to_vswitch: VSwitch) -> Event:
        """Move one of ``handle``'s FEs off ``from_vswitch``: scale out
        onto ``to_vswitch`` first, then gracefully retire the instance on
        ``from_vswitch`` once the new FE is live — the vNIC never loses
        FE capacity mid-migration. If the scale-out gives up (RPC
        failure, target crashed/OOM) the old FE stays where it is."""
        done = self.engine.event(f"migrate-fe-{handle.vnic.vnic_id}")
        grown = self.scale_out(handle, [to_vswitch])

        def finish():
            yield grown
            landed = any(fe.vswitch is to_vswitch
                         for fe in handle.frontends.values())
            live = (self.handles.get(handle.vnic.vnic_id) is handle
                    and handle.state in (OffloadState.DUAL_RUNNING,
                                         OffloadState.ACTIVE))
            if landed and live:
                for location, frontend in list(handle.frontends.items()):
                    if frontend.vswitch is from_vswitch:
                        self._retire_fe(handle, location, graceful=True)
                self.trace.emit("nezha.fe_migrated",
                                vnic=handle.vnic.vnic_id,
                                src=from_vswitch.name,
                                dst=to_vswitch.name)
            else:
                self.trace.emit("nezha.fe_migration_failed",
                                vnic=handle.vnic.vnic_id,
                                src=from_vswitch.name,
                                dst=to_vswitch.name)
            done.succeed(handle)

        self.engine.process(finish(),
                            name=f"migrate-fe-{handle.vnic.vnic_id}")
        return done

    def preempt_fe(self, handle: OffloadHandle, location: Location) -> None:
        """Gracefully revoke one FE grant (tenant-quota preemption).

        Unlike ``fail_fe``/``scale_in_vswitch`` this deliberately does
        NOT request replacements: the scheduler reclaimed the unit, so
        backfilling it would undo the preemption."""
        if location not in handle.frontends:
            return
        self._retire_fe(handle, location, graceful=True)
        self.trace.emit("nezha.fe_preempted", vnic=handle.vnic.vnic_id)

    # -- shared FE retirement ------------------------------------------------------------------------

    def _retire_fe(self, handle: OffloadHandle, location: Location,
                   graceful: bool) -> None:
        """Remove one FE: selector and gateway first, then (after a grace
        period covering the learning interval + RTT, §4.3) the instance.

        Idempotent: racing removals (``fail_fe`` during a ``fallback`` or
        ``scale_in``) find the FE already gone and return without effect.
        """
        frontend = handle.frontends.pop(location, None)
        if frontend is None:
            return
        if location in handle.selector.locations:
            handle.selector.remove(location)
        if handle.fe_locations:
            self.gateway.set_locations(handle.vnic.vni,
                                       handle.vnic.tenant_ip,
                                       handle.fe_locations)
        elif handle.state in (OffloadState.DUAL_RUNNING, OffloadState.ACTIVE):
            # The last FE is gone: point the gateway back at the BE so
            # traffic stops targeting a dead location. During dual-running
            # the BE still processes everything; once ACTIVE it at least
            # accounts the drops while replacements spin up.
            be_location = Location(handle.be_vswitch.server.underlay_ip,
                                   handle.be_vswitch.server.mac)
            self.gateway.set_locations(handle.vnic.vni,
                                       handle.vnic.tenant_ip, [be_location])
            self.trace.emit("nezha.all_fes_lost", vnic=handle.vnic.vnic_id)
        agent = self.agent_for(frontend.vswitch)
        if graceful:
            frontend.retiring = True
            grace = self.config.learning_interval + self.config.inflight_margin

            def later():
                yield self.engine.timeout(grace)
                if agent.frontends.get(handle.vnic.vnic_id) is frontend:
                    agent.unregister_frontend(handle.vnic.vnic_id)

            self.engine.process(later(), name="fe-retire")
        else:
            if agent.frontends.get(handle.vnic.vnic_id) is frontend:
                agent.unregister_frontend(handle.vnic.vnic_id)

    def _remove_frontend(self, handle: OffloadHandle, location: Location,
                         graceful: bool) -> None:
        frontend = handle.frontends.pop(location, None)
        if frontend is None:
            return
        if location in handle.selector.locations:
            handle.selector.remove(location)
        agent = self.agent_for(frontend.vswitch)
        if agent.frontends.get(handle.vnic.vnic_id) is frontend:
            agent.unregister_frontend(handle.vnic.vnic_id)
