"""Seamless vNIC offload, fallback, scaling, and FE failover (§4.2–4.4).

The :class:`NezhaOrchestrator` executes the control-plane workflows as
engine processes, with explicit dual-running stages:

**Offload** (Fig 7): configure rule tables in the selected FEs → install
the BE datapath (TX immediately relays through FEs; RX direct arrivals are
still processed locally because the rule tables are *retained*) → update
the gateway → wait until every learner has pulled the new entry plus an
in-flight margin → release the BE's rule tables (final stage).

**Fallback** is the mirror image, with the vNIC-server entry pointed back
at the BE, and with session state preserved (STATE_ONLY entries are
promoted lazily by the local datapath).

**Scale-out/in** adds/removes FEs without consistent hashing: flows that
land on a different FE after the change just re-run a rule-table lookup.

**Failover**: a crashed FE is removed from the selector and the gateway
immediately; if the FE set would fall below ``min_fes`` (4 in production,
Appendix B.2), a replacement is requested.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import OffloadError, ResourceExhausted
from repro.sim.engine import Engine, Event
from repro.sim.rng import SeededRng
from repro.sim.trace import Trace
from repro.vswitch.rule_tables import Location
from repro.vswitch.vnic import Vnic
from repro.vswitch.vswitch import VSwitch
from repro.controller.gateway import Gateway
from repro.controller.latency import ControlLatencyModel
from repro.core.agent import NezhaAgent
from repro.core.backend import BackendInstance
from repro.core.frontend import FrontendInstance
from repro.core.load_balancer import FeSelector


class OffloadState(enum.Enum):
    DUAL_RUNNING = "dual_running"
    ACTIVE = "active"
    FALLING_BACK = "falling_back"
    INACTIVE = "inactive"


@dataclass
class OffloadConfig:
    learning_interval: float = 0.2      # vSwitch mapping-learning period
    inflight_margin: float = 0.02       # RTT allowance before table deletion
    min_fes: int = 4                    # floor maintained by failover (§4.4)
    sync_poll: float = 0.02             # learner-sync polling period
    sync_timeout: float = 10.0          # give up waiting for laggard learners
    latency: ControlLatencyModel = field(default_factory=ControlLatencyModel)


class OffloadHandle:
    """One offloaded vNIC: its BE, FE set, and lifecycle state."""

    def __init__(self, vnic: Vnic, be_vswitch: VSwitch,
                 backend: BackendInstance, selector: FeSelector) -> None:
        self.vnic = vnic
        self.be_vswitch = be_vswitch
        self.backend = backend
        self.selector = selector
        self.frontends: Dict[Location, FrontendInstance] = {}
        self.state = OffloadState.DUAL_RUNNING
        self.triggered_at = 0.0
        self.completed_at: Optional[float] = None
        self.completion: Optional[Event] = None

    @property
    def fe_locations(self) -> List[Location]:
        return list(self.frontends.keys())

    @property
    def fe_vswitches(self) -> List[VSwitch]:
        return [fe.vswitch for fe in self.frontends.values()]

    @property
    def activation_time(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.triggered_at

    def __repr__(self) -> str:
        return (f"OffloadHandle(vnic={self.vnic.vnic_id}, "
                f"{len(self.frontends)} FEs, {self.state.value})")


class NezhaOrchestrator:
    """Executes Nezha workflows across agents, the gateway, and the fabric."""

    def __init__(self, engine: Engine, gateway: Gateway,
                 rng: Optional[SeededRng] = None,
                 config: Optional[OffloadConfig] = None,
                 trace: Optional[Trace] = None) -> None:
        self.engine = engine
        self.gateway = gateway
        self.rng = rng or SeededRng(0, "orchestrator")
        self.config = config or OffloadConfig()
        self.trace = trace or Trace(lambda: engine.now)
        self.agents: Dict[str, NezhaAgent] = {}
        self.handles: Dict[int, OffloadHandle] = {}
        # Invoked when failover leaves a handle short of FEs; the
        # controller wires this to its placement logic.
        self.need_fe_callback: Optional[
            Callable[[OffloadHandle, int], None]] = None

    # -- agents ------------------------------------------------------------------

    def agent_for(self, vswitch: VSwitch) -> NezhaAgent:
        agent = self.agents.get(vswitch.name)
        if agent is None:
            agent = NezhaAgent(vswitch)
            self.agents[vswitch.name] = agent
        return agent

    def _rpc_delay(self) -> float:
        return self.config.latency.sample(self.rng)

    # -- offload (§4.2.1) -----------------------------------------------------------

    def offload(self, vnic: Vnic, fe_vswitches: List[VSwitch]) -> OffloadHandle:
        """Start the two-stage offload; returns a handle whose
        ``completion`` event fires when the final stage is reached."""
        if vnic.vnic_id in self.handles:
            raise OffloadError(f"vNIC {vnic.vnic_id} is already offloaded")
        if vnic.host is None:
            raise OffloadError(f"{vnic!r} is not hosted anywhere")
        if not fe_vswitches:
            raise OffloadError("offload needs at least one FE")
        be_vswitch = vnic.host
        if any(fe is be_vswitch for fe in fe_vswitches):
            raise OffloadError("an FE cannot live on the BE's own vSwitch")

        selector = FeSelector()
        backend = BackendInstance(be_vswitch, vnic, selector)
        handle = OffloadHandle(vnic, be_vswitch, backend, selector)
        handle.triggered_at = self.engine.now
        handle.completion = self.engine.event(f"offload-{vnic.vnic_id}")
        self.handles[vnic.vnic_id] = handle
        self.engine.process(self._offload_flow(handle, fe_vswitches),
                            name=f"offload-{vnic.vnic_id}")
        return handle

    def _offload_flow(self, handle: OffloadHandle,
                      fe_vswitches: List[VSwitch]):
        vnic = handle.vnic
        self.trace.emit("nezha.offload_trigger", vnic=vnic.vnic_id,
                        be=handle.be_vswitch.name)
        # 1. Configure the vNIC's rule tables in every selected FE.
        yield self.engine.timeout(self._rpc_delay())
        for fe_vswitch in fe_vswitches:
            self._create_frontend(handle, fe_vswitch)
        # 2. Configure BE/FE locations; the BE datapath takes over (TX now
        #    relays via FEs; direct RX is processed with retained tables).
        yield self.engine.timeout(self._rpc_delay())
        be_agent = self.agent_for(handle.be_vswitch)
        be_agent.register_backend(handle.backend)
        handle.be_vswitch.session_table.demote_vni(vnic.vni)
        # 3. Update the gateway's vNIC-server entry to the FE locations.
        yield self.engine.timeout(self._rpc_delay())
        version = self.gateway.set_locations(vnic.vni, vnic.tenant_ip,
                                             handle.fe_locations)
        # Dual-running: wait for every learner, then the in-flight margin.
        yield from self._await_sync(vnic.vni, version)
        yield self.engine.timeout(self.config.inflight_margin)
        # Final stage: delete local rule tables and cached flows.
        handle.be_vswitch.release_vnic_tables(vnic.vnic_id)
        handle.backend.tables_released = True
        handle.state = OffloadState.ACTIVE
        handle.completed_at = self.engine.now
        self.trace.emit("nezha.offload_complete", vnic=vnic.vnic_id,
                        duration=handle.activation_time,
                        fes=len(handle.frontends))
        handle.completion.succeed(handle)

    def _create_frontend(self, handle: OffloadHandle,
                         fe_vswitch: VSwitch) -> Optional[FrontendInstance]:
        if any(fe.vswitch is fe_vswitch for fe in handle.frontends.values()):
            # Concurrent scale-outs can race toward the same target; the
            # second request is redundant, not an error.
            self.trace.emit("nezha.fe_already_present",
                            vnic=handle.vnic.vnic_id,
                            vswitch=fe_vswitch.name)
            return None
        be_location = Location(handle.be_vswitch.server.underlay_ip,
                               handle.be_vswitch.server.mac)
        frontend = FrontendInstance(fe_vswitch, handle.vnic,
                                    handle.vnic.slow_path, be_location)
        self.agent_for(fe_vswitch).register_frontend(frontend)
        location = frontend.location()
        handle.frontends[location] = frontend
        handle.selector.add(location)
        return frontend

    def _await_sync(self, vni: int, version: int):
        deadline = self.engine.now + self.config.sync_timeout
        while not self.gateway.all_learners_synced(vni, version):
            if self.engine.now >= deadline:
                self.trace.emit("nezha.sync_timeout", vni=vni)
                break
            yield self.engine.timeout(self.config.sync_poll)

    # -- fallback (§4.2.2) ---------------------------------------------------------------

    def fallback(self, handle: OffloadHandle) -> Event:
        """Return the vNIC to purely local processing."""
        if handle.state is not OffloadState.ACTIVE:
            raise OffloadError(f"cannot fall back from {handle.state}")
        handle.state = OffloadState.FALLING_BACK
        done = self.engine.event(f"fallback-{handle.vnic.vnic_id}")
        self.engine.process(self._fallback_flow(handle, done),
                            name=f"fallback-{handle.vnic.vnic_id}")
        return done

    def _fallback_flow(self, handle: OffloadHandle, done: Event):
        vnic = handle.vnic
        self.trace.emit("nezha.fallback_trigger", vnic=vnic.vnic_id)
        # 1. Restore the rule tables locally (dual-running, mirrored).
        yield self.engine.timeout(self._rpc_delay())
        try:
            handle.be_vswitch.restore_vnic_tables(vnic.vnic_id)
        except ResourceExhausted:
            handle.state = OffloadState.ACTIVE
            done.fail(OffloadError(
                f"BE lacks memory to restore vNIC {vnic.vnic_id} tables"))
            return
        handle.backend.tables_released = False
        # 2. Point the gateway back at the BE.
        yield self.engine.timeout(self._rpc_delay())
        be_location = Location(handle.be_vswitch.server.underlay_ip,
                               handle.be_vswitch.server.mac)
        version = self.gateway.set_locations(vnic.vni, vnic.tenant_ip,
                                             [be_location])
        yield from self._await_sync(vnic.vni, version)
        yield self.engine.timeout(self.config.inflight_margin)
        # 3. Tear down FEs and the BE datapath; local processing resumes
        #    with session state intact (lazy flow promotion).
        for location in list(handle.frontends):
            self._remove_frontend(handle, location, graceful=False)
        self.agent_for(handle.be_vswitch).unregister_backend(vnic.vnic_id)
        handle.state = OffloadState.INACTIVE
        self.handles.pop(vnic.vnic_id, None)
        self.trace.emit("nezha.fallback_complete", vnic=vnic.vnic_id)
        done.succeed(handle)

    # -- scaling (§4.3) ----------------------------------------------------------------------

    def scale_out(self, handle: OffloadHandle,
                  fe_vswitches: List[VSwitch]) -> Event:
        """Add FEs to an offloaded vNIC."""
        done = self.engine.event(f"scale-out-{handle.vnic.vnic_id}")

        def flow():
            yield self.engine.timeout(self._rpc_delay())
            for fe_vswitch in fe_vswitches:
                self._create_frontend(handle, fe_vswitch)
            yield self.engine.timeout(self._rpc_delay())
            version = self.gateway.set_locations(
                handle.vnic.vni, handle.vnic.tenant_ip, handle.fe_locations)
            yield from self._await_sync(handle.vnic.vni, version)
            self.trace.emit("nezha.scale_out", vnic=handle.vnic.vnic_id,
                            fes=len(handle.frontends))
            done.succeed(handle)

        self.engine.process(flow(), name=f"scale-out-{handle.vnic.vnic_id}")
        return done

    def scale_in_vswitch(self, vswitch: VSwitch) -> int:
        """Remove every FE hosted on ``vswitch`` (it needs its resources
        for local traffic); returns the number of FEs removed."""
        removed = 0
        for handle in list(self.handles.values()):
            for location, frontend in list(handle.frontends.items()):
                if frontend.vswitch is vswitch:
                    self._retire_fe(handle, location, graceful=True)
                    removed += 1
            shortfall = self.config.min_fes - len(handle.frontends)
            if shortfall > 0 and self.need_fe_callback is not None:
                self.need_fe_callback(handle, shortfall)
        if removed:
            self.trace.emit("nezha.scale_in", vswitch=vswitch.name,
                            removed=removed)
        return removed

    # -- failover (§4.4) -------------------------------------------------------------------------

    def fail_fe(self, vswitch: VSwitch) -> int:
        """A vSwitch hosting FEs crashed: remove its FEs everywhere,
        immediately, and request replacements below the minimum."""
        failed = 0
        for handle in list(self.handles.values()):
            for location, frontend in list(handle.frontends.items()):
                if frontend.vswitch is vswitch:
                    self._retire_fe(handle, location, graceful=False)
                    failed += 1
            shortfall = self.config.min_fes - len(handle.frontends)
            if shortfall > 0 and self.need_fe_callback is not None:
                self.need_fe_callback(handle, shortfall)
        if failed:
            self.trace.emit("nezha.failover", vswitch=vswitch.name,
                            removed=failed)
        return failed

    # -- load-imbalance mitigation (§7.5) ---------------------------------------------------------------

    def reseed_load_balancing(self, handle: OffloadHandle, seed: int) -> None:
        """Reconfigure the source-side hash to redistribute flows.

        Ongoing flows may land on FEs without their cached flow — each
        such miss costs one rule-table lookup, nothing more (stateless
        FEs). Applied both at the BE's selector and at the gateway entry
        consumed by remote senders.
        """
        handle.selector.reseed(seed)
        # Remote senders hash via their learned MappingEntry; the seed is
        # a property of their mapping tables, refreshed by learning.
        for learner in self.gateway.learners:
            for vnic in learner.vswitch.vnics.values():
                table = vnic.slow_path.table("vnic_server_mapping")
                if table is not None:
                    table.hash_seed = seed
        self.trace.emit("nezha.reseed", vnic=handle.vnic.vnic_id, seed=seed)

    def dedicate_fe(self, handle: OffloadHandle, ft,
                    fe_vswitch: VSwitch) -> Event:
        """Give an elephant flow a dedicated FE (§7.5): scale out onto
        ``fe_vswitch`` (if not already an FE) and pin the flow there."""
        existing = [loc for loc, fe in handle.frontends.items()
                    if fe.vswitch is fe_vswitch]
        if existing:
            handle.selector.pin(ft, existing[0])
            done = self.engine.event("dedicate-fe")
            done.succeed(handle)
            return done
        done = self.scale_out(handle, [fe_vswitch])

        def pin_after():
            yield done
            location = [loc for loc, fe in handle.frontends.items()
                        if fe.vswitch is fe_vswitch][0]
            handle.selector.pin(ft, location)
            self.trace.emit("nezha.elephant_pinned",
                            vnic=handle.vnic.vnic_id)

        self.engine.process(pin_after(), name="dedicate-fe")
        return done

    # -- BE migration (§7.2: efficient VM live migration) ---------------------------------------------

    def migrate_be(self, handle: OffloadHandle,
                   new_vswitch: VSwitch) -> None:
        """Move an offloaded vNIC's BE to another vSwitch.

        Because the vNIC is offloaded, redirecting traffic needs only a
        BE-location update on the FEs — no gateway/global-routing change,
        no hairpin flows; the paper reports <1 ms to take effect. Session
        states travel with the VM (the migration machinery copies them).
        """
        vnic = handle.vnic
        old_vswitch = handle.be_vswitch
        if new_vswitch is old_vswitch:
            raise OffloadError("BE already lives there")
        if any(fe.vswitch is new_vswitch
               for fe in handle.frontends.values()):
            raise OffloadError("target vSwitch hosts one of this vNIC's FEs")

        # Move the vNIC (and its session states) to the new host.
        self.agent_for(old_vswitch).unregister_backend(vnic.vnic_id)
        old_entries = [entry for entry in old_vswitch.session_table
                       if entry.vni == vnic.vni and entry.state is not None]
        old_vswitch.session_table.remove_vni(vnic.vni)
        old_vswitch.mem.free_all(f"be_meta:{vnic.vnic_id}")
        old_vswitch.vnics.pop(vnic.vnic_id, None)
        old_vswitch._vnic_by_addr.pop((vnic.vni, vnic.tenant_ip.value), None)

        vnic.host = None
        new_vswitch.vnics[vnic.vnic_id] = vnic
        new_vswitch._vnic_by_addr[(vnic.vni, vnic.tenant_ip.value)] = vnic
        vnic.host = new_vswitch
        new_vswitch.mem.alloc(f"be_meta:{vnic.vnic_id}",
                              new_vswitch.cost_model.vnic_be_metadata_bytes)
        from repro.vswitch.session_table import EntryMode
        for entry in old_entries:
            new_vswitch.session_table.insert(
                entry.vni, entry.five_tuple, None, entry.state,
                self.engine.now, EntryMode.STATE_ONLY)

        # New BE instance; FEs redirect by config.
        backend = BackendInstance(new_vswitch, vnic, handle.selector)
        backend.tables_released = True
        backend.packet_level_lb = handle.backend.packet_level_lb
        handle.backend = backend
        handle.be_vswitch = new_vswitch
        self.agent_for(new_vswitch).register_backend(backend)
        new_location = Location(new_vswitch.server.underlay_ip,
                                new_vswitch.server.mac)
        for frontend in handle.frontends.values():
            frontend.be_location = new_location
        self.trace.emit("nezha.be_migrated", vnic=vnic.vnic_id,
                        to=new_vswitch.name)

    # -- shared FE retirement ------------------------------------------------------------------------

    def _retire_fe(self, handle: OffloadHandle, location: Location,
                   graceful: bool) -> None:
        """Remove one FE: selector and gateway first, then (after a grace
        period covering the learning interval + RTT, §4.3) the instance."""
        handle.selector.remove(location)
        frontend = handle.frontends.pop(location)
        if handle.fe_locations:
            self.gateway.set_locations(handle.vnic.vni,
                                       handle.vnic.tenant_ip,
                                       handle.fe_locations)
        agent = self.agent_for(frontend.vswitch)
        if graceful:
            grace = self.config.learning_interval + self.config.inflight_margin

            def later():
                yield self.engine.timeout(grace)
                agent.unregister_frontend(handle.vnic.vnic_id)

            self.engine.process(later(), name="fe-retire")
        else:
            agent.unregister_frontend(handle.vnic.vnic_id)

    def _remove_frontend(self, handle: OffloadHandle, location: Location,
                         graceful: bool) -> None:
        handle.selector.remove(location)
        frontend = handle.frontends.pop(location)
        self.agent_for(frontend.vswitch).unregister_frontend(
            handle.vnic.vnic_id)
