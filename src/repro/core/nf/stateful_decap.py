"""Stateful decapsulation (§5.2) — the load-balancer return path.

When an L4 load balancer (LB) tunnels a client packet to a real server
(RS), the RS's vSwitch must remember the *overlay source* (the LB's
address) so the RS's response returns through the LB instead of going
straight to the client (which would be dropped — the client's TCP
connection is with the LB).

Under Nezha the recording point moves: the FE sees the encapsulated
packet (and thus the overlay source) but holds no state; it forwards the
address in a STATE_INIT TLV and the BE stores it as
``SessionState.decap_overlay_src``. On TX, the BE's state rides to the FE,
which overrides the forwarding target with the recorded address.
"""

from __future__ import annotations

from repro.vswitch.vnic import Vnic


def enable_stateful_decap(vnic: Vnic) -> Vnic:
    """Mark a vNIC (an RS vNIC behind an LB) as needing stateful decap.

    Returns the vNIC for chaining. The flag is honoured by both the local
    pipeline's Nezha split (FE records/uses the overlay source) and the
    BE's state initialization.
    """
    vnic.stateful_decap = True
    return vnic
