"""Case-study network functions on the split pipeline (§5).

The split pipeline itself is NF-agnostic: ``process_pkt`` and the state
machinery live in :mod:`repro.vswitch.actions`. These modules provide the
configuration helpers and semantics documentation for the two NFs the
paper walks through: stateful ACL (§5.1) and stateful decapsulation
(§5.2).
"""

from repro.core.nf.stateful_acl import deny_unsolicited_ingress_acl
from repro.core.nf.stateful_decap import enable_stateful_decap

__all__ = ["deny_unsolicited_ingress_acl", "enable_stateful_decap"]
