"""Stateful ACL (§5.1) — configuration helper.

The mechanics live in the shared pipeline: the ACL table writes
per-direction *pre-action* verdicts into cached flows, the session state
records the first-packet direction, and
:func:`repro.vswitch.actions.resolve_verdict` combines them — identically
on a local vSwitch, a Nezha FE (TX, state carried in the packet), and a
Nezha BE (RX, pre-actions carried in the packet).

This module provides the canonical policy from the paper's example: block
unsolicited ingress while allowing responses to locally initiated
connections.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.addr import IPv4Address
from repro.vswitch.actions import Direction, Verdict
from repro.vswitch.rule_tables import AclRule, AclTable


def deny_unsolicited_ingress_acl(
        allow_ports: Optional[List[int]] = None,
        src_prefix: Optional[Tuple[IPv4Address, int]] = None) -> AclTable:
    """An ACL that drops ingress except for explicitly allowed service
    ports; responses to egress connections pass via the stateful override.

    ``allow_ports`` — destination ports open to unsolicited ingress.
    ``src_prefix`` — optionally restrict even allowed ports to a source
    prefix (e.g. a corporate range).
    """
    rules: List[AclRule] = []
    priority = 1000
    for port in allow_ports or []:
        prefix, length = src_prefix if src_prefix else (None, 0)
        rules.append(AclRule(
            priority=priority, verdict=Verdict.ACCEPT,
            direction=Direction.RX,
            src_prefix=prefix, src_prefix_len=length,
            dst_port_range=(port, port)))
        priority -= 1
    rules.append(AclRule(priority=1, verdict=Verdict.DROP,
                         direction=Direction.RX))
    return AclTable(rules)
