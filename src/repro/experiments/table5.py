"""Table 5: deployment costs — Sailfish (new devices) vs Nezha (reuse).

A cost-accounting table, not a measurement: the person-month figures are
the paper's reported values; the scale-out timelines come from a small
process model (device procurement + racking vs gray software release)
whose parameters are stated below.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult

# Paper-reported effort (person-months).
SAILFISH_HW_PM = 100
SAILFISH_SW_PM = 48
SAILFISH_ITER_PM = 20
NEZHA_HW_PM = 0
NEZHA_SW_PM = 15
NEZHA_ITER_PM = 0

# Scale-out process model (days).
DEVICE_PROCUREMENT_DAYS = (30, 90)       # with/without procurement: 1-3 months
RACK_AND_CABLE_DAYS = 14
GRAY_RELEASE_DAYS_PER_10K_VSWITCHES = 3  # cluster-level rollout waves


def nezha_scale_out_days(cluster_vswitches: int = 10_000) -> float:
    """1-7 days depending on cluster size (§6.4)."""
    waves = max(1, cluster_vswitches // 10_000)
    return min(7.0, max(1.0, waves * GRAY_RELEASE_DAYS_PER_10K_VSWITCHES))


def sailfish_scale_out_days(procurement: bool = True) -> float:
    base = DEVICE_PROCUREMENT_DAYS[1] if procurement else \
        DEVICE_PROCUREMENT_DAYS[0]
    return base + RACK_AND_CABLE_DAYS


def run(cluster_vswitches: int = 10_000) -> ExperimentResult:
    result = ExperimentResult(
        name="table5",
        description="deployment costs: Sailfish vs Nezha",
        columns=["item", "sailfish", "nezha", "paper_sailfish",
                 "paper_nezha"],
    )
    result.add_row(item="hardware development (P-M)",
                   sailfish=SAILFISH_HW_PM, nezha=NEZHA_HW_PM,
                   paper_sailfish=100, paper_nezha=0)
    result.add_row(item="software development (P-M)",
                   sailfish=SAILFISH_SW_PM, nezha=NEZHA_SW_PM,
                   paper_sailfish=48, paper_nezha=15)
    result.add_row(item="extra iteration effort (P-M)",
                   sailfish=SAILFISH_ITER_PM, nezha=NEZHA_ITER_PM,
                   paper_sailfish=20, paper_nezha=0)
    result.add_row(item="scale-out time (days)",
                   sailfish=sailfish_scale_out_days(),
                   nezha=nezha_scale_out_days(cluster_vswitches),
                   paper_sailfish="30-90", paper_nezha="1-7")
    dev_ratio = (NEZHA_SW_PM
                 / (SAILFISH_HW_PM + SAILFISH_SW_PM))
    result.note(f"Nezha development effort = {dev_ratio:.0%} of Sailfish's "
                "(paper: ~10%)")
    return result
