"""Fig 4: CPU/memory utilization CDF over O(10K) vSwitches.

Paper percentiles — CPU: avg≈5 %, P90 15 %, P99 41 %, P999 68 %,
P9999 90 %; memory: avg≈1.5 %, P90 15 %, P99 34 %, P999 93 %, P9999 96 %.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.metrics.percentiles import percentile_summary
from repro.sim.rng import SeededRng
from repro.workloads.fleet import FleetModel

PAPER_CPU = {"avg": 0.05, "P90": 0.15, "P99": 0.41, "P999": 0.68,
             "P9999": 0.90}
PAPER_MEM = {"avg": 0.015, "P90": 0.15, "P99": 0.34, "P999": 0.93,
             "P9999": 0.96}


def run(n_vswitches: int = 100_000, seed: int = 0) -> ExperimentResult:
    model = FleetModel(n_vswitches=n_vswitches, rng=SeededRng(seed, "fig4"))
    cpus, mems = model.sample_utilizations()
    cpu_summary = percentile_summary(cpus)
    mem_summary = percentile_summary(mems)
    result = ExperimentResult(
        name="fig4",
        description="fleet CPU/memory utilization percentiles",
        columns=["percentile", "cpu_measured", "cpu_paper",
                 "mem_measured", "mem_paper"],
    )
    for label in ("avg", "P90", "P99", "P999", "P9999"):
        result.add_row(percentile=label,
                       cpu_measured=cpu_summary[label],
                       cpu_paper=PAPER_CPU[label],
                       mem_measured=mem_summary[label],
                       mem_paper=PAPER_MEM[label])
    result.note("the paper's stated memory average (~1.5%) is slightly "
                "inconsistent with its own P90 (15%); the model favors the "
                "percentile anchors")
    return result
