"""The §6.2 testbed: one high-demand server vNIC, client servers, a pool
of idle vSwitches, and CRR plumbing.

Mirrors the paper's setup: client and server VMs on different servers
(64-core Xeons), other servers as the remote resource pool, vSwitch slice
of 8 cores / 10 GB. Everything runs under the scaled-down cost model, so
capacities are ~1/50 of production and all comparisons are ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.controller.gateway import Gateway, MappingLearner
from repro.controller.latency import ControlLatencyModel
from repro.core.offload import NezhaOrchestrator, OffloadConfig
from repro.fabric import Topology
from repro.host import GuestTcp, Vm, VmCostModel
from repro.net.addr import IPv4Address, MacAddress
from repro.sim import Engine, SeededRng
from repro.vswitch import CostModel, Vnic, VSwitch
from repro.vswitch.rule_tables import Location
from repro.vswitch.slow_path import SlowPath
from repro.vswitch.vswitch import make_standard_chain
from repro.workloads import CrrLoadGenerator

VNI = 100
SERVER_IP = IPv4Address("192.168.1.1")


@dataclass
class Testbed:
    engine: Engine
    topo: Topology
    vswitches: List[VSwitch]
    server_vm: Vm
    server_vnic: Vnic
    server_app: GuestTcp
    client_vms: List[Vm]
    client_vnics: List[Vnic]
    client_apps: List[GuestTcp]
    gateway: Gateway
    orchestrator: NezhaOrchestrator
    learners: List[MappingLearner]
    cost_model: CostModel
    rng: SeededRng

    @property
    def server_vswitch(self) -> VSwitch:
        return self.vswitches[0]

    @property
    def idle_vswitches(self) -> List[VSwitch]:
        return self.vswitches[1 + len(self.client_vms):]

    def run(self, duration: float) -> None:
        self.engine.run(until=self.engine.now + duration)

    def start_crr(self, total_rate_cps: float, duration: float,
                  rng_label: str = "crr") -> List[CrrLoadGenerator]:
        """Open-loop CRR load split evenly across the client VMs."""
        gens = []
        per_client = total_rate_cps / len(self.client_apps)
        for index, app in enumerate(self.client_apps):
            gen = CrrLoadGenerator(
                self.engine, app, SERVER_IP, 80, rate_cps=per_client,
                rng=self.rng.child(f"{rng_label}-{index}"))
            gen.run(duration)
            gens.append(gen)
        return gens

    @staticmethod
    def total_cps(gens: List[CrrLoadGenerator]) -> float:
        duration = gens[0].result.duration
        return sum(g.result.completed for g in gens) / duration


def build_testbed(n_clients: int = 4, n_idle: int = 12,
                  server_vcpus: int = 64, scale: float = 50.0,
                  seed: int = 0,
                  server_chain: Optional[SlowPath] = None,
                  learner_interval: float = 0.05) -> Testbed:
    engine = Engine()
    rng = SeededRng(seed, "testbed")
    cost_model = CostModel.testbed(scale)
    vm_cost = VmCostModel.testbed(scale)
    n_servers = 1 + n_clients + n_idle
    topo = Topology.leaf_spine(engine, n_tors=1, servers_per_tor=n_servers)
    vswitches = [VSwitch(engine, s, cost_model) for s in topo.servers]
    gateway = Gateway(engine)

    # The high-demand server vNIC on server 0.
    chain = server_chain or make_standard_chain(cost_model)
    server_vnic = Vnic(1, VNI, SERVER_IP, MacAddress(0x51), chain)
    vswitches[0].add_vnic(server_vnic)
    server_vm = Vm(engine, "server-vm", vcpus=server_vcpus,
                   cost_model=vm_cost)
    server_vm.attach_vnic(server_vnic)
    server_app = GuestTcp(server_vm, server_vnic)
    server_app.serve(80)
    gateway.set_locations(VNI, SERVER_IP, [Location(
        topo.servers[0].underlay_ip, topo.servers[0].mac)])

    # Client VMs on their own servers.
    client_vms, client_vnics, client_apps = [], [], []
    for index in range(n_clients):
        server_node = topo.servers[1 + index]
        ip = IPv4Address(f"192.168.1.{10 + index}")
        vnic = Vnic(10 + index, VNI, ip, MacAddress(0x60 + index),
                    make_standard_chain(cost_model))
        vswitches[1 + index].add_vnic(vnic)
        vm = Vm(engine, f"client-vm-{index}", vcpus=64, cost_model=vm_cost)
        vm.attach_vnic(vnic)
        app = GuestTcp(vm, vnic)
        client_vms.append(vm)
        client_vnics.append(vnic)
        client_apps.append(app)
        gateway.set_locations(VNI, ip, [Location(server_node.underlay_ip,
                                                 server_node.mac)])

    learners = []
    for index, vswitch in enumerate(vswitches):
        learner = MappingLearner(engine, vswitch, gateway,
                                 interval=learner_interval,
                                 rng=rng.child(f"learner{index}"))
        learner.refresh()
        learner.start()
        learners.append(learner)

    config = OffloadConfig(learning_interval=learner_interval,
                           inflight_margin=0.01, sync_poll=0.01,
                           sync_timeout=2.0,
                           latency=ControlLatencyModel.fast())
    orchestrator = NezhaOrchestrator(engine, gateway,
                                     rng=rng.child("orch"), config=config)
    for vswitch in vswitches:
        vswitch.start_aging(interval=0.5)
    return Testbed(engine, topo, vswitches, server_vm, server_vnic,
                   server_app, client_vms, client_vnics, client_apps,
                   gateway, orchestrator, learners, cost_model, rng)
