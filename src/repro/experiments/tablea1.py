"""Table A1: rule-table lookup throughput (Mpps) vs packet size and
#ACL rules.

The paper's microbenchmark feeds SYN packets through the slow path only.
We run the *actual lookup code* (the table chain with the given ACL
population) for functional fidelity and convert cycle costs into Mpps
with the production cost model — whose constants were themselves
calibrated on this table, so agreement at the corners is by construction;
the interior cells check the additive model.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import sweep
from repro.net.addr import IPv4Address
from repro.net.five_tuple import PROTO_TCP, FiveTuple
from repro.vswitch.actions import Verdict
from repro.vswitch.costs import CostModel
from repro.vswitch.rule_tables import AclRule, AclTable, LookupContext
from repro.vswitch.vswitch import make_standard_chain

PACKET_SIZES = (64, 128, 256, 512)
ACL_RULE_COUNTS = (0, 1, 8, 64, 100, 1000)

PAPER_MPPS: Dict[Tuple[int, int], float] = {
    (64, 0): 6.612, (64, 1): 6.609, (64, 8): 6.333, (64, 64): 5.973,
    (64, 100): 5.966, (64, 1000): 5.422,
    (128, 0): 6.543, (128, 1): 6.455, (128, 8): 6.303, (128, 64): 5.826,
    (128, 100): 5.702, (128, 1000): 5.365,
    (256, 0): 6.415, (256, 1): 6.341, (256, 8): 6.030, (256, 64): 5.430,
    (256, 100): 5.685, (256, 1000): 5.228,
    (512, 0): 5.985, (512, 1): 5.925, (512, 8): 5.455, (512, 64): 5.258,
    (512, 100): 5.035, (512, 1000): 4.762,
}


def _build_acl(n_rules: int) -> AclTable:
    rules = [AclRule(priority=i + 1, verdict=Verdict.ACCEPT,
                     dst_port_range=(i + 1, i + 1))
             for i in range(n_rules)]
    return AclTable(rules)


def run_point(point: Tuple[int, int, int]) -> float:
    """Sweep point: measured Mpps for one (pkt size, #ACL rules) cell."""
    pkt_bytes, n_rules, lookups_per_cell = point
    cost_model = CostModel.production()
    src = IPv4Address("192.168.5.1")
    chain = make_standard_chain(cost_model, acl=_build_acl(n_rules))
    cycles_total = 0.0
    for i in range(lookups_per_cell):
        ft = FiveTuple(src, IPv4Address(f"192.168.6.{i % 250 + 1}"),
                       PROTO_TCP, 1024 + i, 65000)
        _pre, cycles = chain.lookup(
            LookupContext(ft, vni=1, packet_bytes=pkt_bytes))
        cycles_total += cycles
    per_lookup = cycles_total / lookups_per_cell
    return cost_model.total_hz / per_lookup / 1e6


def run(lookups_per_cell: int = 200, seed: int = 0,
        jobs: Optional[int] = 1) -> ExperimentResult:
    result = ExperimentResult(
        name="tablea1",
        description="rule-lookup throughput (Mpps) vs pkt size & #ACL rules",
        columns=["pkt_bytes", "acl_rules", "measured_mpps", "paper_mpps"],
    )
    cells = [(pkt_bytes, n_rules, lookups_per_cell)
             for pkt_bytes in PACKET_SIZES for n_rules in ACL_RULE_COUNTS]
    for (pkt_bytes, n_rules, _), mpps in zip(cells,
                                             sweep(cells, run_point,
                                                   jobs=jobs)):
        result.add_row(pkt_bytes=pkt_bytes, acl_rules=n_rules,
                       measured_mpps=mpps,
                       paper_mpps=PAPER_MPPS[(pkt_bytes, n_rules)])
    result.note("every lookup executes the real table chain; timing uses "
                "the production cost model calibrated on this table's "
                "corner cells")
    return result
