"""Fig 14: impact of an FE crash on the packet loss rate.

Paper: when an FE crashes, the region-level loss rate surges for ≈2 s —
the window covering centralized crash detection (multiple missed pings)
plus failover config propagation — then returns to zero. Only ~1/M of
flows are affected (active-active).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.controller import FePlacement, HealthMonitor, NezhaController
from repro.controller.controller import ControllerConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import sweep
from repro.experiments.testbed import SERVER_IP, build_testbed
from repro.workloads import ClosedLoopCrr


def run_point(point: Tuple[float, float, float, float, int]) -> Dict[str, Any]:
    """Sweep point: one crash/failover simulation (a single point — the
    figure is one continuous loss-rate time series)."""
    kill_at, duration, bucket, monitor_interval, seed = point
    testbed = build_testbed(n_clients=4, n_idle=6, seed=seed)
    engine = testbed.engine

    handle = testbed.orchestrator.offload(testbed.server_vnic,
                                          testbed.idle_vswitches[:4])
    testbed.run(1.0)
    if handle.completed_at is None:
        raise RuntimeError("offload did not complete")

    # Monitoring + failover (the §4.4 machinery).
    monitor_host = testbed.topo.servers[-1]
    monitor = HealthMonitor(engine, monitor_host,
                            interval=monitor_interval, miss_threshold=3)
    placement = FePlacement(testbed.topo, {})
    controller = NezhaController(engine, testbed.gateway,
                                 testbed.orchestrator, placement,
                                 config=ControllerConfig(),
                                 monitor=monitor)
    for vswitch in testbed.vswitches:
        controller.register(vswitch)
    for fe in handle.fe_vswitches:
        monitor.add_target(fe.server)
    monitor.start()

    # Steady CRR traffic; per-bucket completions/failures give loss rate.
    loops = [ClosedLoopCrr(engine, app, SERVER_IP, 80, concurrency=24)
             .start() for app in testbed.client_apps]
    buckets: List[Dict[str, float]] = []
    victim = handle.fe_vswitches[0]

    def sampler():
        prev_done = prev_fail = 0
        while True:
            yield engine.timeout(bucket)
            done = sum(loop.completed for loop in loops)
            fail = sum(loop.failed for loop in loops)
            d, f = done - prev_done, fail - prev_fail
            prev_done, prev_fail = done, fail
            total = d + f
            buckets.append({"t": engine.now - handle.completed_at,
                            "loss": f / total if total else 0.0})

    engine.process(sampler(), name="loss-sampler")
    engine.call_at(engine.now + kill_at, victim.crash)
    testbed.run(duration)

    notes: List[str] = []
    lossy = [row["t"] for row in buckets if row["loss"] > 0.02]
    if lossy:
        notes.append(f"loss surge from ~{min(lossy):.1f}s to "
                     f"~{max(lossy):.1f}s (duration "
                     f"{max(lossy) - min(lossy) + bucket:.1f}s; paper: ~2s)")
    notes.append(f"FE set after failover: {len(handle.frontends)} "
                 "(min 4 restored by the controller)")
    return {"rows": [{"time_s": row["t"], "loss_rate": row["loss"]}
                     for row in buckets],
            "notes": notes}


def run(kill_at: float = 4.0, duration: float = 10.0,
        bucket: float = 0.5, monitor_interval: float = 0.4,
        seed: int = 0, jobs: Optional[int] = 1) -> ExperimentResult:
    outcome, = sweep([(kill_at, duration, bucket, monitor_interval, seed)],
                     run_point, jobs=jobs)
    result = ExperimentResult(
        name="fig14",
        description="loss rate around an FE crash (failover via monitor)",
        columns=["time_s", "loss_rate"],
    )
    for row in outcome["rows"]:
        result.add_row(**row)
    for note in outcome["notes"]:
        result.note(note)
    return result
