"""Fleet-scale simulation: overloads and FE-pool utilization at O(10K).

The paper's motivation is fleet telemetry (§2.2, Table 1, Fig 4): ~10K
vSwitches where almost everything idles and a thin demand tail overloads
— and one shared FE pool absorbs the tail. This experiment simulates
that fleet end-to-end with a **hot/cold split**: each epoch every
vSwitch redraws its peak demand (the Table 1 distributions); the few
whose demand crosses capacity run a real per-packet micro-sim
(:mod:`repro.fleet.hotsim`), while the cold tail advances fluidly on
flyweight struct-of-arrays flow records (:mod:`repro.fleet.flyweight`) —
millions of concurrent connections in tens of megabytes.

The fleet is partitioned into contiguous shards that fan out over the
:func:`~repro.experiments.parallel.sweep` process pool; the shared FE
pool is the only cross-shard coupling (shards report demand, the
coordinator feeds grants back next epoch). Every per-vSwitch stream is
keyed on the global index, so the rendered table is **byte-identical for
every ``--shards`` value** — the fleet-scale instance of the repo's
determinism contract (DESIGN §5.6).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult
from repro.experiments.fig13 import PAPER_MITIGATION
from repro.experiments.parallel import sweep
from repro.fleet import (FleetCoordinator, FleetParams, make_shards,
                         run_shard_epoch)
from repro.workloads.fleet import HotspotKind


def default_pool_units(n_vswitches: int) -> int:
    """FE units provisioned for the fleet: ~1 FE per 40 vSwitches (the
    paper's pooling economics — a small pool serves a large region),
    floored so toy fleets still have a pool worth contending for."""
    return max(4, n_vswitches // 40)


def run(n_vswitches: int = 10_000, epochs: int = 3, seed: int = 0,
        shards: Optional[int] = None, jobs: int = 1,
        fe_pool_units: Optional[int] = None,
        flows_per_unit: int = 20_000,
        survivable_window: float = 3.6) -> ExperimentResult:
    """Run the fleet for ``epochs`` demand redraws.

    ``shards=None`` matches the shard count to ``jobs`` so parallelism
    is meaningful by default; any explicit value is honored — the output
    does not depend on it.
    """
    if shards is None:
        shards = max(1, jobs)
    params = FleetParams(seed=seed, n_vswitches=n_vswitches,
                         flows_per_unit=flows_per_unit)
    pool_units = (default_pool_units(n_vswitches)
                  if fe_pool_units is None else fe_pool_units)
    coordinator = FleetCoordinator(seed=seed, pool_units=pool_units,
                                   survivable_window=survivable_window)
    states = make_shards(params, shards)
    grants: dict = {}

    hot_observations = 0
    hot_sent = hot_delivered = hot_drops = 0
    hot_cpu_sum = 0.0
    fluid_pkts = fluid_bytes = 0
    for epoch in range(epochs):
        points = [(state, epoch, grants, params) for state in states]
        outcomes = sweep(points, run_shard_epoch, jobs=jobs)
        states = [state for state, _report in outcomes]
        reports = [report for _state, report in outcomes]
        grants = coordinator.settle(epoch, reports)
        for report in reports:  # submission order = ascending index
            cold = report["cold"]
            fluid_pkts += cold["pkts"]
            fluid_bytes += cold["bytes"]
            for entry in report["hot"]:
                hot_observations += 1
                hot_sent += entry["sim_sent"]
                hot_delivered += entry["sim_delivered"]
                hot_drops += entry["sim_drops"]
                hot_cpu_sum += entry["sim_cpu"]
                fluid_pkts += entry["pkts"]
                fluid_bytes += entry["bytes"]

    # End-of-run materialization boundary: fold pending aggregates into
    # the flyweight columns and cross-check the fluid totals exactly.
    folded_pkts = folded_bytes = live_flows = 0
    for state in states:
        pkts, nbytes = state.materialize()
        folded_pkts += pkts
        folded_bytes += nbytes
        live_flows += state.live_flows()
    assert folded_pkts == fluid_pkts and folded_bytes == fluid_bytes, \
        "flyweight fold lost traffic"

    result = ExperimentResult(
        name="fleet",
        description="fleet-scale overloads and FE-pool utilization "
                    "(hot/cold split)",
        columns=["metric", "value", "paper"],
    )
    result.add_row(metric="vswitches", value=n_vswitches, paper="")
    result.add_row(metric="epochs", value=epochs, paper="")
    result.add_row(metric="live flows", value=live_flows, paper="")
    result.add_row(metric="fluid packets", value=fluid_pkts, paper="")
    result.add_row(metric="hot observations", value=hot_observations,
                   paper="")
    result.add_row(metric="hot packets simulated", value=hot_sent, paper="")
    result.add_row(metric="hot packets delivered", value=hot_delivered,
                   paper="")
    result.add_row(metric="hot packets dropped", value=hot_drops, paper="")
    result.add_row(metric="hot mean cpu",
                   value=hot_cpu_sum / hot_observations
                   if hot_observations else 0.0,
                   paper="")
    for kind in HotspotKind:
        occurrences, residual = coordinator.overloads[kind]
        mitigated = (1.0 - residual / occurrences) if occurrences else 1.0
        result.add_row(metric=f"{kind.value} overloads", value=occurrences,
                       paper="")
        result.add_row(metric=f"{kind.value} mitigated fraction",
                       value=mitigated, paper=PAPER_MITIGATION[kind])
    for epoch, utilization in enumerate(coordinator.utilization):
        result.add_row(metric=f"fe pool utilization e{epoch}",
                       value=utilization, paper="")
    mean_util = (sum(coordinator.utilization) / len(coordinator.utilization)
                 if coordinator.utilization else 0.0)
    result.add_row(metric="fe pool utilization mean", value=mean_util,
                   paper="")
    result.add_row(metric="fe grant denials", value=coordinator.denied_requests,
                   paper="")
    result.note(f"{n_vswitches} vSwitches x {epochs} epochs sharing "
                f"{pool_units} FE units; hot vSwitches run per-packet "
                "micro-sims, the cold tail advances fluidly on flyweight "
                "records; output is invariant to the shard count")
    return result
