"""Fleet-scale simulation: overloads and FE-pool utilization at O(10K).

The paper's motivation is fleet telemetry (§2.2, Table 1, Fig 4): ~10K
vSwitches where almost everything idles and a thin demand tail overloads
— and one shared FE pool absorbs the tail. This experiment simulates
that fleet end-to-end with a **hot/cold split**: each epoch every
vSwitch redraws its peak demand (the Table 1 distributions); the few
whose demand crosses capacity run a real per-packet micro-sim
(:mod:`repro.fleet.hotsim`), while the cold tail advances fluidly on
flyweight struct-of-arrays flow records (:mod:`repro.fleet.flyweight`) —
millions of concurrent connections in tens of megabytes.

The fleet is partitioned into contiguous shards; with ``jobs > 1`` the
epoch loop runs on a **resident worker pool**
(:class:`~repro.experiments.parallel.ResidentPool`): each worker holds
its shards' state in-process across epochs and only plain-data payloads
(epoch, grants) and reports cross the process boundary — the flyweight
columns ship exactly twice (init/collect) instead of twice per epoch
(DESIGN §5.7). ``resident=False`` falls back to the PR 7 per-epoch
:func:`~repro.experiments.parallel.sweep` round-trip; ``jobs=1`` is the
exact legacy in-process loop. The shared FE pool is the only
cross-shard coupling (shards report demand, the coordinator feeds
grants back next epoch). Every per-vSwitch stream is keyed on the
global index, so the rendered table is **byte-identical for every
``--shards`` × ``--jobs`` × resident-mode combination** — the
fleet-scale instance of the repo's determinism contract (DESIGN §5.6).
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro import telemetry as _telemetry
from repro.experiments.common import ExperimentResult
from repro.experiments.fig13 import PAPER_MITIGATION
from repro.experiments.parallel import ResidentPool, resolve_jobs, sweep
from repro.fleet import (FleetCoordinator, FleetParams, make_shards,
                         run_shard_epoch)
from repro.telemetry.fleet import fold, fold_snapshots
from repro.workloads.fleet import HotspotKind


def _resident_step(state, payload):
    """ResidentPool worker function: one shard, one epoch.

    The broadcast payload is ``(epoch, grants, params)`` — a few hundred
    pickled bytes regardless of fleet size; the shard state stays
    resident in the worker."""
    epoch, grants, params = payload
    return run_shard_epoch((state, epoch, grants, params))


def default_pool_units(n_vswitches: int) -> int:
    """FE units provisioned for the fleet: ~1 FE per 40 vSwitches (the
    paper's pooling economics — a small pool serves a large region),
    floored so toy fleets still have a pool worth contending for."""
    return max(4, n_vswitches // 40)


def run(n_vswitches: int = 10_000, epochs: int = 3, seed: int = 0,
        shards: Optional[int] = None, jobs: int = 1,
        fe_pool_units: Optional[int] = None,
        flows_per_unit: int = 20_000,
        survivable_window: float = 3.6,
        resident: Optional[bool] = None,
        policy: str = "nezha",
        fleet_metrics: Optional[bool] = None,
        stats: Optional[Dict[str, object]] = None) -> ExperimentResult:
    """Run the fleet for ``epochs`` demand redraws.

    ``shards=None`` matches the shard count to ``jobs`` so parallelism
    is meaningful by default; any explicit value is honored — the output
    does not depend on it. ``resident=None`` uses the resident worker
    pool exactly when more than one effective worker is available
    (``jobs=1`` stays the legacy in-process loop either way); ``True`` /
    ``False`` force the mode — the output does not depend on it either.
    ``policy`` selects the coordinator's allocation strategy
    (``nezha``/``pam``/``supernic``/``sirius``, see
    :class:`~repro.fleet.coordinator.FleetCoordinator`); the default
    renders a table byte-identical to the pre-arena experiment.
    ``fleet_metrics`` turns the per-shard metric snapshots on
    (``None`` = on exactly when telemetry is installed): each epoch
    report carries a plain-data snapshot, folded here in slot order
    into one fleet-wide snapshot (``stats["fleet_metrics"]``, and the
    installed telemetry's capture). The snapshots are derived from the
    reports, so every rendered value is byte-identical either way.
    ``stats``, if given, receives phase timings and IPC accounting
    (``seed_epoch_s``, ``steady_epoch_s``, ``ipc_bytes_per_epoch``, ...)
    for the fleet benchmarks.
    """
    if shards is None:
        shards = max(1, jobs)
    if fleet_metrics is None:
        fleet_metrics = _telemetry.current() is not None
    params = FleetParams(seed=seed, n_vswitches=n_vswitches,
                         flows_per_unit=flows_per_unit,
                         collect_metrics=bool(fleet_metrics))
    pool_units = (default_pool_units(n_vswitches)
                  if fe_pool_units is None else fe_pool_units)
    coordinator = FleetCoordinator(seed=seed, pool_units=pool_units,
                                   survivable_window=survivable_window,
                                   policy=policy)
    states = make_shards(params, shards)
    grants: dict = {}
    if resident is None:
        resident = resolve_jobs(jobs, len(states)) > 1
    pool = ResidentPool(_resident_step, states, jobs=jobs) \
        if resident else None

    hot_observations = 0
    hot_sent = hot_delivered = hot_drops = 0
    hot_cpu_sum = 0.0
    fluid_pkts = fluid_bytes = 0
    epoch_walls = []
    fleet_snapshot = None
    try:
        for epoch in range(epochs):
            epoch_started = time.perf_counter()
            if pool is not None:
                reports = pool.step((epoch, grants, params))
            else:
                points = [(state, epoch, grants, params)
                          for state in states]
                outcomes = sweep(points, run_shard_epoch, jobs=jobs)
                states = [state for state, _report in outcomes]
                reports = [report for _state, report in outcomes]
            grants = coordinator.settle(epoch, reports)
            if params.collect_metrics:
                # Fold in submission order (= ascending global index):
                # the slot-order fold contract makes the merged snapshot
                # byte-identical across shards x jobs x residency.
                epoch_snapshot = fold_snapshots(
                    report["metrics"] for report in reports)
                fleet_snapshot = epoch_snapshot if fleet_snapshot is None \
                    else fold(fleet_snapshot, epoch_snapshot)
            for report in reports:  # submission order = ascending index
                cold = report["cold"]
                fluid_pkts += cold["pkts"]
                fluid_bytes += cold["bytes"]
                for entry in report["hot"]:
                    hot_observations += 1
                    hot_sent += entry["sim_sent"]
                    hot_delivered += entry["sim_delivered"]
                    hot_drops += entry["sim_drops"]
                    hot_cpu_sum += entry["sim_cpu"]
                    fluid_pkts += entry["pkts"]
                    fluid_bytes += entry["bytes"]
            epoch_walls.append(time.perf_counter() - epoch_started)
        if pool is not None:
            states = pool.collect()
    finally:
        if pool is not None:
            pool.close()

    if stats is not None:
        stats["resident"] = resident
        stats["jobs"] = pool.jobs if pool is not None else 1
        stats["epoch_walls_s"] = epoch_walls
        stats["seed_epoch_s"] = epoch_walls[0] if epoch_walls else 0.0
        steady = epoch_walls[1:]
        stats["steady_epoch_s"] = (sum(steady) / len(steady)) if steady \
            else 0.0
        if pool is not None:
            stats["ipc_bytes_init"] = pool.init_ipc_bytes
            stats["ipc_bytes_collect"] = pool.collect_ipc_bytes
            stats["ipc_bytes_per_epoch"] = pool.ipc_bytes_per_step()
            stats["pool"] = pool.runtime_stats()
        stats["state_nbytes"] = sum(state.nbytes() for state in states)
        stats["store_stats"] = [state.store.stats() for state in states]
        if fleet_snapshot is not None:
            stats["fleet_metrics"] = fleet_snapshot
    if fleet_snapshot is not None:
        tel = _telemetry.current()
        if tel is not None:
            tel.set_fleet_metrics(fleet_snapshot)

    # End-of-run materialization boundary: fold pending aggregates into
    # the flyweight columns and cross-check the fluid totals exactly.
    folded_pkts = folded_bytes = live_flows = 0
    for state in states:
        pkts, nbytes = state.materialize()
        folded_pkts += pkts
        folded_bytes += nbytes
        live_flows += state.live_flows()
    assert folded_pkts == fluid_pkts and folded_bytes == fluid_bytes, \
        "flyweight fold lost traffic"

    result = ExperimentResult(
        name="fleet",
        description="fleet-scale overloads and FE-pool utilization "
                    "(hot/cold split)",
        columns=["metric", "value", "paper"],
    )
    result.add_row(metric="vswitches", value=n_vswitches, paper="")
    result.add_row(metric="epochs", value=epochs, paper="")
    result.add_row(metric="live flows", value=live_flows, paper="")
    result.add_row(metric="fluid packets", value=fluid_pkts, paper="")
    result.add_row(metric="hot observations", value=hot_observations,
                   paper="")
    result.add_row(metric="hot packets simulated", value=hot_sent, paper="")
    result.add_row(metric="hot packets delivered", value=hot_delivered,
                   paper="")
    result.add_row(metric="hot packets dropped", value=hot_drops, paper="")
    result.add_row(metric="hot mean cpu",
                   value=hot_cpu_sum / hot_observations
                   if hot_observations else 0.0,
                   paper="")
    for kind in HotspotKind:
        occurrences, residual = coordinator.overloads[kind]
        mitigated = (1.0 - residual / occurrences) if occurrences else 1.0
        result.add_row(metric=f"{kind.value} overloads", value=occurrences,
                       paper="")
        result.add_row(metric=f"{kind.value} mitigated fraction",
                       value=mitigated, paper=PAPER_MITIGATION[kind])
    for epoch, utilization in enumerate(coordinator.utilization):
        result.add_row(metric=f"fe pool utilization e{epoch}",
                       value=utilization, paper="")
    mean_util = (sum(coordinator.utilization) / len(coordinator.utilization)
                 if coordinator.utilization else 0.0)
    result.add_row(metric="fe pool utilization mean", value=mean_util,
                   paper="")
    result.add_row(metric="fe grant denials", value=coordinator.denied_requests,
                   paper="")
    # Policy-specific rows only for non-default policies: the nezha table
    # must stay byte-identical to the pre-arena experiment (CI-gated).
    if policy != "nezha":
        result.add_row(metric="allocation policy", value=policy, paper="")
        result.add_row(metric="fe preemptions",
                       value=coordinator.preemptions, paper="")
    result.note(f"{n_vswitches} vSwitches x {epochs} epochs sharing "
                f"{pool_units} FE units; hot vSwitches run per-packet "
                "micro-sims, the cold tail advances fluidly on flyweight "
                "records; output is invariant to the shard count, worker "
                "count, and residency mode")
    return result
