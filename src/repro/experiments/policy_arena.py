"""Policy arena: PAM, SuperNIC, Sirius, and Nezha head-to-head.

The comparison figure the paper never ran. Every registered
load-sharing policy (:mod:`repro.controller.policy`) is scored on the
same two stages:

* **testbed** — the §6.2 micro-testbed under closed-loop CRR load with
  the *controller* (not a hand-placed offload) reacting through the
  policy under test: measured CPS, probe-flow P99 latency via the
  shared telemetry span layer (the fig12 probe pattern inside a
  :func:`~repro.telemetry.span_session` — reusing the installed
  telemetry's recorder when there is one), and the mean number of FE
  instances the policy keeps deployed;
* **fleet** — the fleet workload's demand redraws with the matching
  :class:`~repro.fleet.coordinator.FleetCoordinator` allocation policy:
  FE-pool cost per epoch (mean units in use), overall mitigated
  fraction, denials, and preemptions.

Each (policy, stage) pair is an independent sweep point with its own
engine and seed, so ``--jobs N`` fans the arena out process-parallel and
still renders a table byte-identical to ``--jobs 1``. Pass
``policy="pam"`` (CLI: ``--policy pam``) to score a single policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.controller.controller import ControllerConfig, NezhaController
from repro.controller.placement import FePlacement
from repro.controller.policy import POLICY_NAMES, make_policy
from repro.experiments.common import ExperimentResult
from repro.experiments.fleet import default_pool_units
from repro.experiments.parallel import sweep
from repro.experiments.testbed import SERVER_IP, build_testbed
from repro.fleet import (FleetCoordinator, FleetParams, make_shards,
                         run_shard_epoch)
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags
from repro.telemetry import span_session
from repro.telemetry import spans as _spans
from repro.workloads import ClosedLoopCrr

PROBE_PORT = 9000


def _testbed_stage(policy_name: str, seed: int, duration: float,
                   warmup: float, concurrency_per_client: int,
                   probe_rate: float = 200.0) -> Dict[str, float]:
    """CPS + span-layer P99 + mean deployed FEs for one policy."""
    testbed = build_testbed(n_clients=4, n_idle=8, seed=seed)
    engine = testbed.engine
    placement = FePlacement(testbed.topo, {})
    config = ControllerConfig(poll_interval=0.05)
    controller = NezhaController(engine, testbed.gateway,
                                 testbed.orchestrator, placement,
                                 config=config,
                                 policy=make_policy(policy_name))
    for vswitch in testbed.vswitches:
        controller.register(vswitch)
    controller.start()

    loops = [ClosedLoopCrr(engine, app, SERVER_IP, 80,
                           concurrency=concurrency_per_client).start()
             for app in testbed.client_apps]

    # fig12-style probe flow; the span layer times every delivery.
    probe_vnic = testbed.client_vnics[0]
    probe_vm = testbed.client_vms[0]
    testbed.server_vm.listen(testbed.server_vnic, PROBE_PORT, lambda pkt: None)
    span_label = f"arena/{policy_name}"

    def probe():
        first = True
        while True:
            pkt = Packet.tcp(probe_vnic.tenant_ip, SERVER_IP, 9100,
                             PROBE_PORT,
                             TcpFlags.of("syn") if first
                             else TcpFlags.of("psh", "ack"))
            if _spans.ACTIVE:
                _spans.begin(pkt, span_label, engine.now)
            probe_vm.send(probe_vnic, pkt, new_connection=first)
            first = False
            yield engine.timeout(1.0 / probe_rate)

    engine.process(probe(), name="arena-probe")

    # Mean FE instances deployed across the measurement window: the
    # testbed-side cost of the policy's placement decisions.
    fe_samples: List[int] = []

    def sample_fes():
        while True:
            fe_samples.append(sum(
                len(h.frontends)
                for h in testbed.orchestrator.handles.values()))
            yield engine.timeout(config.poll_interval)

    # Shared span layer: reuse the installed telemetry's recorder when
    # one exists (so arena probes land in the exported report), else a
    # temporary recorder for just this stage. Clear only our own label —
    # a shared recorder may be mid-flight with other sessions' spans.
    with span_session() as recorder:
        testbed.run(warmup)
        recorder.clear(span_label)    # measurement starts clean
        engine.process(sample_fes(), name="arena-fe-sampler")
        start = sum(loop.completed for loop in loops)
        testbed.run(duration)
        cps = (sum(loop.completed for loop in loops) - start) / duration
        aggregated = recorder.aggregate().get(span_label)
    p99 = aggregated["latency"]["P99"] if aggregated else 0.0
    fe_mean = sum(fe_samples) / len(fe_samples) if fe_samples else 0.0
    return {"cps": cps, "p99_us": p99 * 1e6, "fe_units": fe_mean,
            "offloads": controller.offloads_triggered}


def _fleet_stage(policy_name: str, seed: int, n_vswitches: int,
                 epochs: int) -> Dict[str, float]:
    """FE-pool cost and mitigation for one coordinator policy."""
    params = FleetParams(seed=seed, n_vswitches=n_vswitches)
    pool_units = default_pool_units(n_vswitches)
    coordinator = FleetCoordinator(seed=seed, pool_units=pool_units,
                                   policy=policy_name)
    states = make_shards(params, 1)
    grants: dict = {}
    for epoch in range(epochs):
        outcomes = [run_shard_epoch((state, epoch, grants, params))
                    for state in states]
        states = [state for state, _report in outcomes]
        reports = [report for _state, report in outcomes]
        grants = coordinator.settle(epoch, reports)
    occurrences = sum(c[0] for c in coordinator.overloads.values())
    residual = sum(c[1] for c in coordinator.overloads.values())
    mitigated = (1.0 - residual / occurrences) if occurrences else 1.0
    mean_units = (sum(coordinator.utilization) * pool_units
                  / len(coordinator.utilization)
                  if coordinator.utilization else 0.0)
    return {"pool_units_per_epoch": mean_units,
            "mitigated_pct": 100.0 * mitigated,
            "denials": coordinator.denied_requests,
            "preemptions": coordinator.preemptions}


def run_point(point: Tuple[str, str, int, float, float, int, int, int]
              ) -> Dict[str, float]:
    """Sweep point: one (stage, policy) measurement in its own engine."""
    (stage, policy_name, seed, duration, warmup,
     concurrency_per_client, fleet_vswitches, fleet_epochs) = point
    if stage == "testbed":
        return _testbed_stage(policy_name, seed, duration, warmup,
                              concurrency_per_client)
    return _fleet_stage(policy_name, seed, fleet_vswitches, fleet_epochs)


def run(policy: Optional[str] = None, seed: int = 0,
        jobs: Optional[int] = 1, duration: float = 1.2,
        warmup: float = 0.6, concurrency_per_client: int = 64,
        fleet_vswitches: int = 1000,
        fleet_epochs: int = 3) -> ExperimentResult:
    """Score load-sharing policies head-to-head.

    ``policy=None`` runs the whole arena (every registered policy); a
    name runs that single policy — same columns, one row.
    """
    policies = list(POLICY_NAMES) if policy is None else [policy]
    points = []
    for stage in ("testbed", "fleet"):
        for name in policies:
            points.append((stage, name, seed, duration, warmup,
                           concurrency_per_client, fleet_vswitches,
                           fleet_epochs))
    measured = sweep(points, run_point, jobs=jobs)
    testbed_rows = dict(zip(policies, measured[:len(policies)]))
    fleet_rows = dict(zip(policies, measured[len(policies):]))

    result = ExperimentResult(
        name="policy_arena",
        description="load-sharing policies head-to-head: CPS, span-layer "
                    "P99 latency, and FE-pool cost",
        columns=["policy", "cps", "p99_us", "fe_units",
                 "pool_units_per_epoch", "mitigated_pct", "denials",
                 "preemptions"],
    )
    for name in policies:
        micro = testbed_rows[name]
        fleet = fleet_rows[name]
        result.add_row(policy=name, cps=micro["cps"],
                       p99_us=micro["p99_us"], fe_units=micro["fe_units"],
                       pool_units_per_epoch=fleet["pool_units_per_epoch"],
                       mitigated_pct=fleet["mitigated_pct"],
                       denials=fleet["denials"],
                       preemptions=fleet["preemptions"])
    result.note("testbed columns (cps, p99_us, fe_units) come from the "
                "§6.2 micro-testbed with the controller running each "
                "policy; pool columns from the fleet workload under the "
                "matching coordinator allocation. sirius is the "
                "no-load-sharing baseline; expect nezha >= pam >= sirius "
                "on cps and sirius to mitigate nothing at fleet scale.")
    return result
