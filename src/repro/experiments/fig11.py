"""Fig 11: CPU utilization during offloading and FE scaling.

Paper: ramping CPS pushes the BE vSwitch past the 70 % offload threshold;
after offloading to 4 FEs its utilization collapses to ≈10 % (only state
handling remains). When the average FE utilization crosses 40 %, scaling
out to 8 FEs halves the FE load.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import sweep
from repro.experiments.testbed import SERVER_IP, build_testbed
from repro.metrics.timeseries import TimeSeries
from repro.workloads import ClosedLoopCrr


def run_point(point: Tuple[float, float, int]) -> Dict[str, Any]:
    """Sweep point: the whole ramp/offload/scale-out simulation.

    Fig 11 is one continuous time series, so there is a single point; it
    still follows the point-function contract (own engine, plain-data
    return) so the CLI can run it in a pool worker alongside other
    experiments.
    """
    duration, sample_period, seed = point
    testbed = build_testbed(n_clients=4, n_idle=8, seed=seed)
    engine = testbed.engine
    be_series = TimeSeries("be_cpu")
    fe_series = TimeSeries("fe_cpu_avg")
    state = {"handle": None, "scaled": False}

    loops: List[ClosedLoopCrr] = [
        ClosedLoopCrr(engine, app, SERVER_IP, 80, concurrency=4).start()
        for app in testbed.client_apps]

    def ramp():
        # Add concurrency every 1s to ramp offered CPS.
        while True:
            yield engine.timeout(1.0)
            for loop in loops:
                loop.concurrency += 10
                for _ in range(10):
                    loop._spawn()

    def control():
        while True:
            yield engine.timeout(0.2)
            handle = state["handle"]
            if handle is None:
                if testbed.server_vswitch.cpu_utilization() > 0.7:
                    state["handle"] = testbed.orchestrator.offload(
                        testbed.server_vnic, testbed.idle_vswitches[:4])
            elif not state["scaled"] and handle.completed_at is not None:
                fes = handle.fe_vswitches
                avg = sum(fe.cpu_utilization() for fe in fes) / len(fes)
                if avg > 0.4:
                    state["scaled"] = True
                    testbed.orchestrator.scale_out(
                        handle, testbed.idle_vswitches[4:8])

    def sampler():
        while True:
            be_series.record(engine.now,
                             testbed.server_vswitch.cpu_utilization())
            handle = state["handle"]
            if handle is not None and handle.frontends:
                fes = handle.fe_vswitches
                fe_series.record(engine.now,
                                 sum(fe.cpu_utilization()
                                     for fe in fes) / len(fes))
            else:
                fe_series.record(engine.now, 0.0)
            yield engine.timeout(sample_period)

    engine.process(ramp(), name="ramp")
    engine.process(control(), name="control")
    engine.process(sampler(), name="sampler")
    engine.run(until=duration)

    rows = [{"time_s": t, "be_cpu": be, "fe_cpu_avg": fe}
            for (t, be), (_t2, fe) in zip(be_series.points,
                                          fe_series.points)]
    notes: List[str] = []
    handle = state["handle"]
    if handle is not None and handle.completed_at is not None:
        t_off = handle.completed_at
        pre = [v for t, v in be_series.points if t_off - 1.0 <= t < t_off]
        post = [v for t, v in be_series.points
                if t_off + 1.0 <= t < t_off + 3.0]
        if pre and post:
            notes.append(f"BE CPU before offload {max(pre):.0%} -> after "
                         f"{sum(post) / len(post):.0%} "
                         "(paper: ~70% -> ~10%)")
        notes.append(f"scale-out triggered: {state['scaled']} "
                     f"(#FEs={len(handle.frontends)})")
    return {"rows": rows, "notes": notes}


def run(duration: float = 14.0, sample_period: float = 0.25,
        seed: int = 0, jobs: Optional[int] = 1) -> ExperimentResult:
    outcome, = sweep([(duration, sample_period, seed)], run_point,
                     jobs=jobs)
    result = ExperimentResult(
        name="fig11",
        description="BE / avg-FE CPU utilization during offload + scaling",
        columns=["time_s", "be_cpu", "fe_cpu_avg"],
    )
    for row in outcome["rows"]:
        result.add_row(**row)
    for note in outcome["notes"]:
        result.note(note)
    return result
