"""Appendix B.2: the 30-day production test of the initial-#FEs choice.

Paper: 2 499 offload events provisioned 4 FEs each (9 996); the
accumulated total was 10 062 FEs, i.e. at most 66 scale-outs — ≤2.6 % of
resource pools ever scaled beyond the initial 4.

Model: each offload event's vNIC demand comes from the usage tail
(demand > capacity triggered the offload); the pool scales out only when
demand also exceeds what 4 FEs can absorb. Each FE, being idle, absorbs
``fe_capacity_factor`` x a baseline vSwitch's capability.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sim.rng import SeededRng
from repro.workloads.fleet import FleetModel, HotspotKind

PAPER_EVENTS = 2499
PAPER_SCALE_OUTS = 66
PAPER_RATIO = 0.026


def run(n_events: int = 2499, seed: int = 0, initial_fes: int = 4,
        fe_capacity_factor: float = 2.2) -> ExperimentResult:
    model = FleetModel(rng=SeededRng(seed, "appb2"))
    rng = model.rng.child("events")
    dist = model.usage[HotspotKind.CPS]
    threshold = model.capacity.cps
    pool_capacity = initial_fes * fe_capacity_factor * threshold

    scale_outs = 0
    total_fes = 0
    events = 0
    while events < n_events:
        demand = dist.sample(rng)
        if demand <= threshold:
            continue  # not an overload; no offload triggered
        events += 1
        total_fes += initial_fes
        if demand > pool_capacity:
            # Scale out in single-FE steps until the pool absorbs it.
            extra = 0
            while demand > (initial_fes + extra) * \
                    fe_capacity_factor * threshold:
                extra += 1
            scale_outs += 1
            total_fes += extra

    result = ExperimentResult(
        name="appb2",
        description="30-day production test: scale-outs beyond 4 FEs",
        columns=["quantity", "measured", "paper"],
    )
    result.add_row(quantity="offload events", measured=events,
                   paper=PAPER_EVENTS)
    result.add_row(quantity="FEs provisioned", measured=total_fes,
                   paper=10062)
    result.add_row(quantity="pools scaled out", measured=scale_outs,
                   paper=PAPER_SCALE_OUTS)
    result.add_row(quantity="scale-out ratio",
                   measured=scale_outs / events, paper=PAPER_RATIO)
    result.note(f"each idle FE absorbs {fe_capacity_factor}x a loaded "
                "vSwitch's capability (idle FEs have full headroom)")
    return result
