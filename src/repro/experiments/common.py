"""Shared experiment infrastructure: result tables and formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """A reproduced table/figure: rows plus the paper's reference values."""

    name: str
    description: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_where(self, key: str, value: Any) -> Dict[str, Any]:
        for row in self.rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r}")

    # -- rendering -----------------------------------------------------------

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"  # covers -0.0 too: no stray sign
            # Format the magnitude and re-attach the sign, so a negative
            # value always renders exactly as "-" + its positive twin
            # (same threshold bucket, same precision, same width + 1).
            sign = "-" if value < 0 else ""
            magnitude = abs(value)
            if magnitude >= 1000:
                return f"{sign}{magnitude:,.0f}"
            if magnitude >= 10:
                return f"{sign}{magnitude:.1f}"
            return f"{sign}{magnitude:.3g}"
        return str(value)

    def to_text(self) -> str:
        widths = {col: len(col) for col in self.columns}
        rendered = []
        for row in self.rows:
            cells = {col: self._fmt(row.get(col, "")) for col in self.columns}
            rendered.append(cells)
            for col, cell in cells.items():
                widths[col] = max(widths[col], len(cell))
        lines = [f"== {self.name}: {self.description} =="]
        header = "  ".join(col.ljust(widths[col]) for col in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for cells in rendered:
            lines.append("  ".join(cells[col].ljust(widths[col])
                                   for col in self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:  # noqa: A003 - mirrors the builtin by intent
        print(self.to_text())


def relative_error(measured: float, paper: float) -> float:
    """|measured - paper| / paper, guarding zero."""
    if paper == 0:
        return abs(measured)
    return abs(measured - paper) / abs(paper)
