"""Experiment harnesses: one module per table/figure in the paper.

Every module exposes ``run(...) -> ExperimentResult`` whose rows mirror
the paper's artifact, with paper values attached for side-by-side
comparison. The benchmarks in ``benchmarks/`` are thin wrappers that
execute these and print the tables; EXPERIMENTS.md records the outcomes.

Sweep-shaped experiments also expose a top-level ``run_point(point)``
and accept ``run(..., jobs=N)``: points fan out over a process pool via
:mod:`repro.experiments.parallel` and merge deterministically (every
``jobs`` value renders byte-identical tables). The CLI in ``runner.py``
exposes this as ``python -m repro.experiments <id> --jobs N``.

| module   | paper artifact                                   |
|----------|--------------------------------------------------|
| fig2     | CPU of high-CPS VMs vs their vSwitches           |
| fig3     | hotspot cause distribution                       |
| fig4     | fleet CPU/memory utilization percentiles         |
| table1   | normalized service-usage percentiles             |
| fig9     | performance gain vs #FEs                         |
| fig10    | CPS vs #vCPUs, with/without Nezha                |
| fig11    | CPU utilization during offloading/scaling        |
| fig12    | end-to-end latency vs load                       |
| table3   | middlebox gains (LB / NAT / TR)                  |
| table4   | offload activation completion times              |
| fig13    | daily overloads before/after Nezha               |
| fig14    | FE crash loss-rate surge and recovery            |
| fig15    | average state size (variable-length potential)   |
| table5   | deployment costs vs Sailfish                     |
| tablea1  | rule-lookup throughput vs pkt size / #ACL rules  |
| figa1    | VM migration downtime vs resources               |
| appb2    | 30-day scale-out ratio                           |
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
