"""Table 1: normalized distribution of CPS / #flows / #vNICs usage.

Usage normalized so the P9999 user = 100 %.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.metrics.percentiles import percentile
from repro.sim.rng import SeededRng
from repro.workloads.fleet import FleetModel, HotspotKind

PAPER = {
    "cps": {"P50": 0.0053, "P90": 0.0141, "P99": 0.0641, "P999": 0.1838,
            "P9999": 1.0},
    "flows": {"P50": 0.0078, "P90": 0.0236, "P99": 0.0639, "P999": 0.2917,
              "P9999": 1.0},
    "vnics": {"P50": 0.0065, "P90": 0.01, "P99": 0.06, "P999": 0.55,
              "P9999": 1.0},
}

_LABEL_Q = {"P50": 50.0, "P90": 90.0, "P99": 99.0, "P999": 99.9,
            "P9999": 99.99}


def run(n_samples: int = 200_000, seed: int = 0) -> ExperimentResult:
    model = FleetModel(n_vswitches=n_samples, rng=SeededRng(seed, "table1"))
    result = ExperimentResult(
        name="table1",
        description="normalized service-usage percentiles (P9999 = 1.0)",
        columns=["metric", "percentile", "measured", "paper"],
    )
    for kind in HotspotKind:
        samples = model.sample_usage(kind)
        norm = percentile(samples, 99.99)
        for label, q in _LABEL_Q.items():
            result.add_row(metric=kind.value, percentile=label,
                           measured=percentile(samples, q) / norm,
                           paper=PAPER[kind.value][label])
    return result
