"""Closed-form capacity model for the memory-bound capabilities.

CPS is measured packet-by-packet in the DES; #concurrent flows and #vNICs
are *memory-accounting* phenomena (§2.2.2), so their capacities follow
directly from the byte model — computed here with the same constants the
DES charges, at production scale (ratios are scale-free).

Budget calibration (documented in EXPERIMENTS.md):

* session-table budget ≈ 320 MB of the vSwitch's memory ("hundreds of MB
  to a few GB for the session table", §2.2.2);
* a full session entry is 160 B (96 B keys/pre-actions + 64 B state); a
  BE state-only entry is 96 B (32 B key + 64 B state); an FE cached flow
  is 96 B;
* each FE grants a flow budget of (session budget + vNIC tables)/4, so
  the remote side stops limiting #flows at exactly 4 FEs (Fig 9);
* each FE grants ~4 GB for remote rule tables, equal to the local table
  budget, making the #vNIC gain proportional to #FEs (Fig 9);
* the 2 KB of BE metadata per offloaded vNIC caps the gain at
  2 MB / 2 KB = 1000x (§6.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.host.vm import VmCostModel
from repro.vswitch.costs import GB, MB, CostModel
from repro.vswitch.slow_path import SlowPath

FULL_ENTRY_BYTES = 160       # 96B keys/pre-actions + 64B state
STATE_ENTRY_BYTES = 96       # 32B key + 64B state (BE residue)
FLOW_ENTRY_BYTES = 96        # FE cached flow (no state)


@dataclass
class CapacityModel:
    """Capacity arithmetic shared by fig9 and table3."""

    cost_model: CostModel = field(default_factory=CostModel.production)
    vm_cost: VmCostModel = field(default_factory=VmCostModel)
    vm_vcpus: int = 64
    pkts_per_conn: int = 6                     # the CRR exchange
    session_budget_bytes: int = 320 * MB
    # The *offloaded* vNIC is a high-demand one: its rule tables are the
    # O(100MB)+ kind (large VPCs need 200MB+ of vNIC-server entries alone,
    # §2.2.2) — that is the memory Nezha frees for states.
    vnic_table_bytes: int = 410 * MB
    local_table_budget_bytes: int = 4 * GB
    fe_table_grant_bytes: int = 4 * GB
    fe_flow_grant_bytes: Optional[int] = None  # default: saturate at 4 FEs
    flow_program_factor: float = 1.0           # chain-complexity multiplier
    instance_cps_limit: Optional[float] = None  # overrides the VM model

    def __post_init__(self) -> None:
        if self.fe_flow_grant_bytes is None:
            self.fe_flow_grant_bytes = (
                self.session_budget_bytes + self.vnic_table_bytes) // 4

    # -- CPS ----------------------------------------------------------------------

    def vm_cps_limit(self) -> float:
        if self.instance_cps_limit is not None:
            return self.instance_cps_limit
        return min(self.vm_cost.serial_cap(),
                   self.vm_cost.parallel_cap(self.vm_vcpus))

    def _per_packet_cycles(self) -> float:
        cm = self.cost_model
        return cm.fast_path_cycles + cm.encap_cycles + 64 * cm.cycles_per_byte

    def local_conn_cycles(self, lookup_cycles: float) -> float:
        cm = self.cost_model
        return (lookup_cycles
                + cm.flow_insert_cycles * self.flow_program_factor
                + cm.state_insert_cycles
                + self.pkts_per_conn * self._per_packet_cycles())

    def fe_conn_cycles(self, lookup_cycles: float) -> float:
        """Total FE-side cycles per connection. Bidirectional flows hash to
        different FEs (§3.2.3), so the lookup+insert happens once per
        direction."""
        cm = self.cost_model
        return (2 * (lookup_cycles
                     + cm.flow_insert_cycles * self.flow_program_factor)
                + self.pkts_per_conn * (self._per_packet_cycles()
                                        + cm.state_encode_cycles))

    def be_conn_cycles(self) -> float:
        cm = self.cost_model
        return (cm.be_state_insert_cycles
                + self.pkts_per_conn * (cm.be_fastpath_cycles
                                        + cm.state_encode_cycles
                                        + 64 * cm.cycles_per_byte))

    def baseline_cps(self, chain: Optional[SlowPath] = None,
                     lookup_cycles: Optional[float] = None) -> float:
        lookup = (lookup_cycles if lookup_cycles is not None
                  else (chain.lookup_cost(64) if chain is not None
                        else self.cost_model.lookup_cycles(5, 0, 64)))
        vswitch_cap = self.cost_model.total_hz / self.local_conn_cycles(lookup)
        return min(vswitch_cap, self.vm_cps_limit())

    def nezha_cps(self, n_fes: int, chain: Optional[SlowPath] = None,
                  lookup_cycles: Optional[float] = None) -> float:
        lookup = (lookup_cycles if lookup_cycles is not None
                  else (chain.lookup_cost(64) if chain is not None
                        else self.cost_model.lookup_cycles(5, 0, 64)))
        fe_cap = n_fes * self.cost_model.total_hz / self.fe_conn_cycles(lookup)
        be_cap = self.cost_model.total_hz / self.be_conn_cycles()
        return min(fe_cap, be_cap, self.vm_cps_limit())

    def cps_gain(self, n_fes: int, **kwargs) -> float:
        return self.nezha_cps(n_fes, **kwargs) / self.baseline_cps(**kwargs)

    # -- #concurrent flows ---------------------------------------------------------------

    def flows_baseline(self) -> int:
        return self.session_budget_bytes // FULL_ENTRY_BYTES

    def flows_nezha(self, n_fes: int) -> int:
        local_states = ((self.session_budget_bytes + self.vnic_table_bytes)
                        // STATE_ENTRY_BYTES)
        remote_flows = (n_fes * self.fe_flow_grant_bytes
                        // FLOW_ENTRY_BYTES)
        return min(local_states, remote_flows)

    def flows_gain(self, n_fes: int) -> float:
        return self.flows_nezha(n_fes) / self.flows_baseline()

    # -- #vNICs -------------------------------------------------------------------------------

    def vnics_baseline(self) -> int:
        return self.local_table_budget_bytes // self.vnic_table_bytes

    def vnics_nezha(self, n_fes: int) -> int:
        remote = n_fes * (self.fe_table_grant_bytes
                          // self.vnic_table_bytes)
        # The BE still pins 2KB metadata per vNIC (§6.2.1): 1000x ceiling.
        be_meta_cap = (self.vnic_table_bytes
                       // self.cost_model.vnic_be_metadata_bytes
                       * self.vnics_baseline())
        return min(remote, be_meta_cap)

    def vnics_gain(self, n_fes: int) -> float:
        return self.vnics_nezha(n_fes) / self.vnics_baseline()

    def vnics_theoretical_max_gain(self, table_bytes: int = 2 * MB) -> float:
        """§6.2.1: 2MB minimum table / 2KB BE metadata = 1000x."""
        return table_bytes / self.cost_model.vnic_be_metadata_bytes


# -- sweeps -------------------------------------------------------------------------

def gain_point(point: "Tuple[CapacityModel, int]") -> dict:
    """Sweep point: every capacity gain at one FE count.

    The model is closed-form, so a point is cheap — the value of the
    point-function shape is that capacity sweeps compose with the same
    deterministic ``sweep()`` machinery (and pool workers) as the
    packet-level experiments. ``n_fes == 0`` is the no-offload baseline.
    """
    model, n_fes = point
    if n_fes == 0:
        return {"n_fes": 0, "cps_gain": 1.0, "flows_gain": 1.0,
                "vnics_gain": 1.0}
    return {"n_fes": n_fes,
            "cps_gain": model.cps_gain(n_fes),
            "flows_gain": model.flows_gain(n_fes),
            "vnics_gain": model.vnics_gain(n_fes)}


def sweep_gains(fe_counts, model: Optional[CapacityModel] = None,
                jobs: Optional[int] = 1) -> list:
    """Capacity gains over a sweep of FE counts, in submission order."""
    from repro.experiments.parallel import sweep
    model = model or CapacityModel()
    return sweep([(model, n_fes) for n_fes in fe_counts], gain_point,
                 jobs=jobs)
