"""Fig A1: VM live-migration downtime vs vCPU count and memory.

Paper: downtime grows with purchased resources; a 1024 GB VM's migration
takes tens of minutes end to end — the cost Nezha's 2 s remote offloading
avoids (§7.2).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sim.rng import SeededRng
from repro.workloads.fleet import FleetModel

VCPU_POINTS = (4, 8, 16, 32, 64, 128)
MEMORY_POINTS_GB = (16, 32, 64, 128, 256, 512, 1024)


def run(samples_per_point: int = 200, seed: int = 0) -> ExperimentResult:
    rng = SeededRng(seed, "figa1")
    result = ExperimentResult(
        name="figa1",
        description="VM migration downtime (s) vs resources",
        columns=["dimension", "value", "avg_downtime_s",
                 "avg_completion_s"],
    )
    for vcpus in VCPU_POINTS:
        downs = [FleetModel.migration_downtime(vcpus, 16, rng)
                 for _ in range(samples_per_point)]
        result.add_row(dimension="vcpus", value=vcpus,
                       avg_downtime_s=sum(downs) / len(downs),
                       avg_completion_s=float("nan"))
    for mem in MEMORY_POINTS_GB:
        downs = [FleetModel.migration_downtime(16, mem, rng)
                 for _ in range(samples_per_point)]
        totals = [FleetModel.migration_completion_time(mem, rng)
                  for _ in range(samples_per_point)]
        result.add_row(dimension="memory_gb", value=mem,
                       avg_downtime_s=sum(downs) / len(downs),
                       avg_completion_s=sum(totals) / len(totals))
    result.note("1024GB completion lands in the tens-of-minutes regime; "
                "Nezha's offload alternative completes in ~2s (Table 4) "
                "independent of VM size")
    return result
