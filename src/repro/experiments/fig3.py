"""Fig 3: hotspot cause distribution in a region.

Paper: vSwitch overloads split ≈61 % CPS, ≈30 % #concurrent flows,
≈9 % #vNICs. Reproduced by classifying fleet-model demand draws against
the calibrated per-resource capacities.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.sim.rng import SeededRng
from repro.workloads.fleet import FleetModel, HotspotKind

PAPER = {HotspotKind.CPS: 0.61, HotspotKind.FLOWS: 0.30,
         HotspotKind.VNICS: 0.09}


def run(n_vswitches: int = 100_000, seed: int = 0) -> ExperimentResult:
    model = FleetModel(n_vswitches=n_vswitches, rng=SeededRng(seed, "fig3"))
    shares = model.hotspot_distribution()
    result = ExperimentResult(
        name="fig3",
        description="hotspot cause distribution in a region",
        columns=["cause", "measured_share", "paper_share"],
    )
    for kind in HotspotKind:
        result.add_row(cause=kind.value, measured_share=shares[kind],
                       paper_share=PAPER[kind])
    result.note(f"classified {n_vswitches} demand draws against the "
                f"calibrated capacities")
    return result
