"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig9
    python -m repro.experiments table4 --seed 3
    python -m repro.experiments fig12 --jobs 4
    python -m repro.experiments all --fast --jobs 8

``all --fast`` runs only the model-based experiments (seconds); ``all``
includes the packet-level ones (minutes).

``--jobs N`` fans work out over ``N`` worker processes (default: one per
CPU core). For a single experiment the sweep points run in the pool; for
``all`` the *experiments themselves* additionally run concurrently (each
one sequential inside its worker). ``--jobs 1`` is the exact legacy
in-process path, and every ``--jobs N`` prints result tables
byte-identical to it: sweeps merge in submission order and ``all``
prints in the listed experiment order.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
import time
from typing import List, Optional, Tuple

from repro.experiments.parallel import default_jobs, sweep

FAST_EXPERIMENTS = ["fig3", "fig4", "table1", "table3", "table4", "table5",
                    "fig13", "fig15", "tablea1", "figa1", "appb2"]
SLOW_EXPERIMENTS = ["fig2", "fig9", "fig10", "fig11", "fig12", "fig14",
                    "chaos", "fleet", "policy_arena"]
ALL_EXPERIMENTS = FAST_EXPERIMENTS + SLOW_EXPERIMENTS


def _quick_kwargs(name: str) -> dict:
    """Scaled-down parameters for ``--fast`` single-experiment runs.

    Reuses the macro-bench registry's "quick" profiles so the CI
    telemetry smoke and the wall-clock benchmarks exercise the exact
    same configuration.
    """
    from repro.bench.macro import MACRO_BENCHES
    for bench in MACRO_BENCHES:
        if bench.module == name:
            return dict(bench.quick_kwargs)
    return {}


def _run_kwargs(run_fn, seed: int, jobs: int,
                shards: Optional[int] = None,
                resident: Optional[bool] = None,
                policy: Optional[str] = None) -> dict:
    """Keyword arguments ``run_fn`` actually accepts.

    Inspects the signature's *parameters* — the old
    ``"seed" in run.__code__.co_varnames`` check also matched local
    variables, so a seedless ``run`` with a ``seed`` local would have
    been called with an unexpected keyword. ``shards``, ``resident``,
    and ``policy`` are forwarded only when the experiment takes them
    (today: fleet and policy_arena) *and* the user asked for a specific
    value; ``None`` keeps the experiment's own default (fleet matches
    shards to jobs, uses the resident pool whenever more than one worker
    is effective, and allocates with the Nezha policy; policy_arena runs
    every policy).
    """
    params = inspect.signature(run_fn).parameters
    kwargs = {}
    if "seed" in params:
        kwargs["seed"] = seed
    if "jobs" in params:
        kwargs["jobs"] = jobs
    if "shards" in params and shards is not None:
        kwargs["shards"] = shards
    if "resident" in params and resident is not None:
        kwargs["resident"] = resident
    if "policy" in params and policy is not None:
        kwargs["policy"] = policy
    return kwargs


def run_experiment(name: str, seed: int = 0, jobs: int = 1,
                   fast: bool = False, shards: Optional[int] = None,
                   resident: Optional[bool] = None,
                   policy: Optional[str] = None):
    """Import and execute one experiment; returns (result, elapsed_s)."""
    module = importlib.import_module(f"repro.experiments.{name}")
    kwargs = _run_kwargs(module.run, seed, jobs, shards, resident, policy)
    if fast:
        kwargs.update(_quick_kwargs(name))
    started = time.perf_counter()
    result = module.run(**kwargs)
    return result, time.perf_counter() - started


def run_one(name: str, seed: int = 0, jobs: int = 1,
            fast: bool = False, shards: Optional[int] = None,
            resident: Optional[bool] = None,
            policy: Optional[str] = None) -> None:
    result, elapsed = run_experiment(name, seed, jobs, fast=fast,
                                     shards=shards, resident=resident,
                                     policy=policy)
    print(result.to_text())
    print(f"[{name} finished in {elapsed:.1f}s]\n")


def _experiment_point(point: Tuple[str, int]) -> Tuple[str, float]:
    """Sweep point for ``all``: one whole experiment, rendered to text.

    Runs with ``jobs=1`` inside its worker — the pool is already one
    process per experiment, so inner fan-out would only oversubscribe.
    """
    name, seed = point
    result, elapsed = run_experiment(name, seed, jobs=1)
    return result.to_text(), elapsed


def run_all(names: List[str], seed: int = 0, jobs: int = 1) -> None:
    if jobs == 1:
        for name in names:  # the legacy in-process path, prints as it goes
            run_one(name, seed)
        return
    outcomes = sweep([(name, seed) for name in names], _experiment_point,
                     jobs=jobs)
    for name, (text, elapsed) in zip(names, outcomes):
        print(text)
        print(f"[{name} finished in {elapsed:.1f}s]\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'all', or 'list'")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="with 'all': skip the packet-level experiments; "
                             "with a single experiment: use its scaled-down "
                             "quick parameters (same as the macro benches)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes (default: one per CPU core; "
                             "1 = sequential in-process)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="fleet experiment only: partition the vSwitch "
                             "range into N shards (default: match --jobs); "
                             "output is byte-identical for every N")
    parser.add_argument("--resident", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="fleet experiment only: force the resident "
                             "worker pool on (--resident) or off "
                             "(--no-resident); default: resident whenever "
                             "more than one worker is effective; output is "
                             "byte-identical either way")
    parser.add_argument("--policy", default=None,
                        choices=["nezha", "pam", "supernic", "sirius"],
                        help="load-sharing policy for experiments that "
                             "take one (fleet: coordinator allocation; "
                             "policy_arena: run just this policy instead "
                             "of the full head-to-head); default: the "
                             "experiment's own (nezha / all policies)")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="record telemetry (metrics, latency spans, "
                             "unified trace, engine profile) and export it "
                             "as JSONL to PATH; forces --jobs 1 because the "
                             "recorders are in-process")
    args = parser.parse_args(argv)

    jobs = default_jobs() if args.jobs is None else args.jobs
    if jobs < 1:
        parser.error(f"--jobs must be >= 1, got {jobs}")
    if args.shards is not None and args.shards < 1:
        parser.error(f"--shards must be >= 1, got {args.shards}")

    if args.experiment == "list":
        print("model-based (seconds):", ", ".join(FAST_EXPERIMENTS))
        print("packet-level (minutes):", ", ".join(SLOW_EXPERIMENTS))
        return 0

    tel = None
    if args.telemetry is not None:
        from repro import telemetry
        tel = telemetry.install(profile=True)
        jobs = 1  # pool workers would not share the in-process recorders
    try:
        if args.experiment == "all":
            names = FAST_EXPERIMENTS if args.fast else ALL_EXPERIMENTS
            run_all(names, args.seed, jobs)
        elif args.experiment not in ALL_EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}; try 'list'",
                  file=sys.stderr)
            return 2
        else:
            run_one(args.experiment, args.seed, jobs, fast=args.fast,
                    shards=args.shards, resident=args.resident,
                    policy=args.policy)
        if tel is not None:
            lines = tel.export(args.telemetry)
            print(f"[telemetry: {lines} lines -> {args.telemetry}]")
    finally:
        if tel is not None:
            from repro import telemetry
            telemetry.uninstall()
    return 0
