"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig9
    python -m repro.experiments table4 --seed 3
    python -m repro.experiments all --fast

``all --fast`` runs only the model-based experiments (seconds); ``all``
includes the packet-level ones (minutes).
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import List

FAST_EXPERIMENTS = ["fig3", "fig4", "table1", "table3", "table4", "table5",
                    "fig13", "fig15", "tablea1", "figa1", "appb2"]
SLOW_EXPERIMENTS = ["fig2", "fig9", "fig10", "fig11", "fig12", "fig14"]
ALL_EXPERIMENTS = FAST_EXPERIMENTS + SLOW_EXPERIMENTS


def run_one(name: str, seed: int = 0) -> None:
    module = importlib.import_module(f"repro.experiments.{name}")
    kwargs = {}
    if "seed" in module.run.__code__.co_varnames:
        kwargs["seed"] = seed
    started = time.time()
    result = module.run(**kwargs)
    elapsed = time.time() - started
    print(result.to_text())
    print(f"[{name} finished in {elapsed:.1f}s]\n")


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'all', or 'list'")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--fast", action="store_true",
                        help="with 'all': skip the packet-level experiments")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        print("model-based (seconds):", ", ".join(FAST_EXPERIMENTS))
        print("packet-level (minutes):", ", ".join(SLOW_EXPERIMENTS))
        return 0
    if args.experiment == "all":
        names = FAST_EXPERIMENTS if args.fast else ALL_EXPERIMENTS
        for name in names:
            run_one(name, args.seed)
        return 0
    if args.experiment not in ALL_EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list'",
              file=sys.stderr)
        return 2
    run_one(args.experiment, args.seed)
    return 0
