"""Table 4: completion time for activating offloading.

Paper (one month of production): avg ≈ 1077 ms, P90 ≈ 1503 ms,
P99 ≈ 2087 ms, P999 ≈ 2858 ms. We run many full offload workflows through
the orchestrator — controller RPC pushes (log-normal), the 200 ms
mapping-learning window with per-vSwitch phase offsets, and the in-flight
margin — and summarize the activation times.
"""

from __future__ import annotations

from typing import List

from repro.controller.gateway import Gateway, MappingLearner
from repro.controller.latency import ControlLatencyModel
from repro.core.offload import NezhaOrchestrator, OffloadConfig
from repro.experiments.common import ExperimentResult
from repro.fabric import Topology
from repro.metrics.percentiles import percentile, percentile_summary
from repro.net.addr import IPv4Address, MacAddress
from repro.sim import Engine, SeededRng
from repro.vswitch import CostModel, Vnic, VSwitch
from repro.vswitch.rule_tables import Location
from repro.vswitch.vswitch import make_standard_chain

PAPER_MS = {"avg": 1077.0, "P90": 1503.0, "P99": 2087.0, "P999": 2858.0}


def run(n_offloads: int = 400, seed: int = 0,
        learning_interval: float = 0.2) -> ExperimentResult:
    engine = Engine()
    rng = SeededRng(seed, "table4")
    cost_model = CostModel.testbed()
    n_servers = 24
    topo = Topology.leaf_spine(engine, n_tors=2,
                               servers_per_tor=n_servers // 2)
    vswitches = [VSwitch(engine, s, cost_model) for s in topo.servers]
    gateway = Gateway(engine)
    for index, vswitch in enumerate(vswitches):
        MappingLearner(engine, vswitch, gateway, interval=learning_interval,
                       rng=rng.child(f"learner{index}")).start()
    config = OffloadConfig(learning_interval=learning_interval,
                           inflight_margin=0.02, sync_poll=0.01,
                           sync_timeout=10.0,
                           latency=ControlLatencyModel())
    orchestrator = NezhaOrchestrator(engine, gateway,
                                     rng=rng.child("orch"), config=config)

    durations_ms: List[float] = []
    vni = 500

    def offload_one(index: int):
        be_index = index % len(vswitches)
        be = vswitches[be_index]
        fes = [vswitches[(be_index + 1 + j) % len(vswitches)]
               for j in range(4)]
        chain = make_standard_chain(cost_model)
        vnic = Vnic(1000 + index, vni + index,
                    IPv4Address(f"172.{16 + index // 250}.{index % 250}.1"),
                    MacAddress(0x1000 + index), chain)
        be.add_vnic(vnic)
        gateway.set_locations(vnic.vni, vnic.tenant_ip,
                              [Location(be.server.underlay_ip,
                                        be.server.mac)])
        handle = orchestrator.offload(vnic, fes)
        value = yield handle.completion
        durations_ms.append(value.activation_time * 1000.0)

    # Stagger the offload triggers like independent hotspot events.
    t = 0.0
    for index in range(n_offloads):
        engine.call_at(t, lambda i=index: engine.process(
            offload_one(i), name=f"offload-{i}"))
        t += rng.uniform(0.05, 0.3)
    engine.run(until=t + 30.0)

    summary = percentile_summary(durations_ms)
    result = ExperimentResult(
        name="table4",
        description="offload activation completion time (ms)",
        columns=["percentile", "measured_ms", "paper_ms"],
    )
    for label in ("avg", "P90", "P99", "P999"):
        result.add_row(percentile=label, measured_ms=summary[label],
                       paper_ms=PAPER_MS[label])
    result.note(f"{len(durations_ms)} offload activations; components: "
                "3 controller pushes (log-normal) + learning window "
                f"(0..{learning_interval * 1000:.0f}ms phase) + margin")
    return result
