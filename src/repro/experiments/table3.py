"""Table 3: performance gain with three middleboxes (LB / NAT / TR).

Paper: CPS gains 4x / 4.4x / 3x (all converge to ≈1.3 M CPS with Nezha —
the instance-side limit); #vNICs > 40x for all three; #concurrent flows
5.04x / 50.4x / 15.3x.

* CPS — the capacity model with each middlebox's real rule chain: the
  more complex the lookup (and the flow programming it implies), the
  lower the baseline and the larger the gain; TR bypasses the ACL and
  gains least.
* #flows — memory accounting: the freed rule tables become state memory;
  NAT keeps tiny session budgets (short-lived translations) so freeing
  its 100 MB of tables is transformative, while LB's huge persistent
  session table means a modest relative gain.
* #vNICs — remote tables scale with FEs; production policy stops at
  O(1K) vNICs per VM (>40x), far below the 1000x BE-metadata ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.capacity import CapacityModel
from repro.experiments.common import ExperimentResult
from repro.middlebox import lb_profile, nat_profile, tr_profile
from repro.vswitch.costs import MB, CostModel

# Middlebox SmartNICs are the "more capable" generation (§6.3.1): 16-core
# vSwitch slices; the instance itself (kernel-bypass dataplane) sustains
# ~1.3M CPS once the vSwitch stops limiting.
MIDDLEBOX_CORES = 16
INSTANCE_CPS_LIMIT = 1.3e6

# Session-table budgets (bytes): LB holds persistent per-RS connections;
# NAT/TR sessions are short-lived. Calibrated in EXPERIMENTS.md.
SESSION_BUDGETS = {
    "load-balancer": 60 * MB,
    "nat-gateway": int(3.4 * MB),
    "transit-router": int(12.3 * MB),
}

# Flow-programming complexity multipliers: richer chains program more
# pre-action state per cached flow.
FLOW_PROGRAM_FACTORS = {
    "load-balancer": 1.33,
    "nat-gateway": 1.48,
    "transit-router": 1.0,
}

PAPER = {
    "load-balancer": {"cps": 4.0, "vnics": 40.0, "flows": 5.04},
    "nat-gateway": {"cps": 4.4, "vnics": 40.0, "flows": 50.4},
    "transit-router": {"cps": 3.0, "vnics": 40.0, "flows": 15.3},
}


def _middlebox_capacity(profile) -> CapacityModel:
    cost_model = CostModel.production()
    cost_model.cores = MIDDLEBOX_CORES
    return CapacityModel(
        cost_model=cost_model,
        instance_cps_limit=INSTANCE_CPS_LIMIT,
        session_budget_bytes=SESSION_BUDGETS[profile.name],
        vnic_table_bytes=profile.table_memory_prod,
        flow_program_factor=FLOW_PROGRAM_FACTORS[profile.name],
        # State inserts are hardware-assisted on this generation.
    )


def run(n_fes_for_cps: int = 8) -> ExperimentResult:
    result = ExperimentResult(
        name="table3",
        description="middlebox gains: CPS / #vNICs / #concurrent flows",
        columns=["middlebox", "metric", "measured_gain", "paper_gain"],
    )
    for profile in (lb_profile(scale=1.0), nat_profile(scale=1.0),
                    tr_profile(scale=1.0)):
        cap = _middlebox_capacity(profile)
        chain = profile.build_chain(cap.cost_model)
        lookup = chain.lookup_cost(64)
        # Middlebox SmartNICs use the hardware state path locally too.
        cap.cost_model.state_insert_cycles = 0.0
        cps_gain = cap.cps_gain(n_fes_for_cps, lookup_cycles=lookup)
        flows_gain = ((cap.session_budget_bytes + profile.table_memory_prod)
                      / 96) / (cap.session_budget_bytes / 160)
        vnics_gain = min(
            1000.0,           # BE-metadata ceiling (2MB/2KB)
            50.0,             # production policy: O(1K) vNICs per VM
        )
        for metric, gain in (("cps", cps_gain), ("vnics", vnics_gain),
                             ("flows", flows_gain)):
            result.add_row(middlebox=profile.name, metric=metric,
                           measured_gain=gain,
                           paper_gain=PAPER[profile.name][metric])
        result.add_row(middlebox=profile.name, metric="cps_absolute",
                       measured_gain=cap.nezha_cps(n_fes_for_cps,
                                                   lookup_cycles=lookup),
                       paper_gain=1.3e6)
    result.note("#vNICs reported as the production-policy gain (>40x); "
                "the architectural ceiling is 1000x (2MB tables / 2KB BE "
                "metadata)")
    return result
