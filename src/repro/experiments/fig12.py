"""Fig 12: end-to-end latency with/without Nezha vs vSwitch load.

Paper: below the offload threshold both curves coincide; around 80 % CPU
the extra BE→FE hop costs <10 µs; past that, the overloaded local vSwitch's
latency explodes while Nezha's stays flat.

Probe flow: a steady low-rate established flow client→server whose
per-packet delivery latency we timestamp; background closed-loop CRR sets
the vSwitch load.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import sweep
from repro.experiments.testbed import SERVER_IP, build_testbed
from repro.metrics.percentiles import percentile
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags
from repro.telemetry import spans as _spans
from repro.workloads import ClosedLoopCrr

PROBE_PORT = 9000


def _measure(load_concurrency: int, nezha: bool, seed: int,
             duration: float = 1.5,
             probe_rate: float = 200.0) -> Tuple[float, float]:
    """Returns (vswitch cpu utilization, P50 probe latency seconds)."""
    testbed = build_testbed(n_clients=4, n_idle=4, seed=seed)
    engine = testbed.engine
    if nezha:
        handle = testbed.orchestrator.offload(testbed.server_vnic,
                                              testbed.idle_vswitches[:4])
        testbed.run(1.0)
        if handle.completed_at is None:
            raise RuntimeError("offload did not complete")
    if load_concurrency:
        for app in testbed.client_apps:
            ClosedLoopCrr(engine, app, SERVER_IP, 80,
                          concurrency=load_concurrency).start()

    latencies: List[float] = []
    probe_vnic = testbed.client_vnics[0]
    probe_vm = testbed.client_vms[0]
    testbed.server_vm.listen(
        testbed.server_vnic, PROBE_PORT,
        lambda pkt: latencies.append(engine.now - pkt.meta["probe_sent"]))

    # Telemetry label: one per (path, load) sweep point, so the recorded
    # spans aggregate into exactly the rows this experiment reports.
    span_label = f"{'offloaded' if nezha else 'local'}/load{load_concurrency}"

    def probe():
        first = True
        while True:
            pkt = Packet.tcp(probe_vnic.tenant_ip, SERVER_IP, 9100,
                             PROBE_PORT,
                             TcpFlags.of("syn") if first
                             else TcpFlags.of("psh", "ack"))
            pkt.meta["probe_sent"] = engine.now
            if _spans.ACTIVE:
                _spans.begin(pkt, span_label, engine.now)
            probe_vm.send(probe_vnic, pkt, new_connection=first)
            first = False
            yield engine.timeout(1.0 / probe_rate)

    engine.process(probe(), name="probe")
    testbed.run(0.5)          # warm up the load + probe session
    latencies.clear()
    if _spans.ACTIVE:
        # Same warmup discard the latency list gets, so the span p50
        # reproduces this measurement exactly.
        from repro import telemetry
        tel = telemetry.current()
        if tel is not None:
            tel.spans.clear(span_label)
    testbed.run(duration)
    util = testbed.server_vswitch.cpu_utilization()
    if nezha:
        handle_fes = testbed.orchestrator.handles[
            testbed.server_vnic.vnic_id].fe_vswitches
        util = max(util, max(fe.cpu_utilization() for fe in handle_fes))
    p50 = percentile(latencies, 50) if latencies else float("inf")
    return util, p50


def run_point(point: Tuple[int, bool, int, float]) -> Tuple[float, float]:
    """Sweep point: (vswitch cpu, P50 probe latency) for one
    (load, nezha on/off) configuration."""
    load_concurrency, nezha, seed, duration = point
    return _measure(load_concurrency, nezha=nezha, seed=seed,
                    duration=duration)


def run(load_levels: Sequence[int] = (0, 8, 16, 32, 48, 64, 96),
        seed: int = 0, duration: float = 1.5,
        jobs: Optional[int] = 1) -> ExperimentResult:
    result = ExperimentResult(
        name="fig12",
        description="probe latency (us) vs load, with/without Nezha",
        columns=["load_concurrency", "cpu_without", "latency_without_us",
                 "latency_with_us", "extra_hop_us"],
    )
    points = [(load, nezha, seed, duration)
              for load in load_levels for nezha in (False, True)]
    measured = sweep(points, run_point, jobs=jobs)
    for index, load in enumerate(load_levels):
        util_without, lat_without = measured[2 * index]
        _util_with, lat_with = measured[2 * index + 1]
        extra = (lat_with - lat_without) * 1e6
        result.add_row(load_concurrency=load,
                       cpu_without=util_without,
                       latency_without_us=lat_without * 1e6,
                       latency_with_us=lat_with * 1e6,
                       extra_hop_us=extra)
    result.note("expected: small positive extra_hop at low load; at high "
                "load latency_without blows up while latency_with stays "
                "flat. Simulated latencies are ~50x the paper's absolute "
                "numbers (scaled cost model); compare shapes.")
    return result
