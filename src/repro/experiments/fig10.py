"""Fig 10: CPS under different #vCPU cores in the VM.

Paper: without Nezha the vSwitch caps CPS regardless of vCPUs; with
Nezha CPS grows with vCPUs but sub-linearly, flattening near 48 cores —
VM-kernel locks, not the network, now limit CPS.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import sweep
from repro.experiments.testbed import SERVER_IP, build_testbed
from repro.workloads import ClosedLoopCrr, measure_cps


def measure(vcpus: int, nezha: bool, duration: float, warmup: float,
            concurrency_per_client: int, seed: int) -> float:
    testbed = build_testbed(n_clients=4, n_idle=4, server_vcpus=vcpus,
                            seed=seed)
    if nezha:
        handle = testbed.orchestrator.offload(testbed.server_vnic,
                                              testbed.idle_vswitches[:4])
        testbed.run(1.0)
        if handle.completed_at is None:
            raise RuntimeError("offload did not complete")
    loops = [ClosedLoopCrr(testbed.engine, app, SERVER_IP, 80,
                           concurrency=concurrency_per_client).start()
             for app in testbed.client_apps]
    return measure_cps(testbed.engine, loops, warmup, duration)


def run_point(point: Tuple[int, bool, float, float, int, int]) -> float:
    """Sweep point: CPS for one (vcpus, nezha on/off) configuration."""
    vcpus, nezha, duration, warmup, concurrency_per_client, seed = point
    return measure(vcpus, nezha, duration, warmup,
                   concurrency_per_client, seed)


def run(vcpu_counts: Sequence[int] = (8, 16, 32, 48, 64),
        duration: float = 1.5, warmup: float = 1.0,
        concurrency_per_client: int = 96, seed: int = 0,
        jobs: Optional[int] = 1) -> ExperimentResult:
    result = ExperimentResult(
        name="fig10",
        description="CPS vs #vCPU cores, with and without Nezha",
        columns=["vcpus", "cps_without", "cps_with", "gain"],
    )
    points = [(vcpus, nezha, duration, warmup, concurrency_per_client, seed)
              for vcpus in vcpu_counts for nezha in (False, True)]
    measured = sweep(points, run_point, jobs=jobs)
    for index, vcpus in enumerate(vcpu_counts):
        without, with_nezha = measured[2 * index], measured[2 * index + 1]
        result.add_row(vcpus=vcpus, cps_without=without,
                       cps_with=with_nezha, gain=with_nezha / without)
    result.note("expected shape: cps_without flat (vSwitch-bound); "
                "cps_with grows then flattens near ~40 vCPUs "
                "(kernel-lock-bound)")
    return result
