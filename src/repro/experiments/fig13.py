"""Fig 13: daily vSwitch overload occurrences before/after Nezha.

Paper: Nezha mitigates >99.9 % of CPS and #concurrent-flow overloads and
*all* #vNIC overloads; the residue exists because offload activation is
not instantaneous (P999 ≈ 2.8 s).

The fleet model redraws per-vSwitch peak demand daily; each overload
event samples an activation time from the Table 4 completion model and
survives (i.e. still counts as an overload occurrence) only if activation
exceeded the survivable window.
"""

from __future__ import annotations

from repro.controller.latency import ControlLatencyModel
from repro.experiments.common import ExperimentResult
from repro.sim.rng import SeededRng
from repro.workloads.fleet import FleetModel, HotspotKind

PAPER_MITIGATION = {HotspotKind.CPS: 0.999, HotspotKind.FLOWS: 0.999,
                    HotspotKind.VNICS: 1.0}


def activation_sampler(latency: ControlLatencyModel, learning: float = 0.2):
    """Activation time = 3 controller pushes + learning phase + margin
    (the Table 4 composition)."""

    def sample(rng: SeededRng) -> float:
        return (sum(latency.sample(rng) for _ in range(3))
                + rng.uniform(0.0, learning) + 0.02)

    return sample


def run(n_vswitches: int = 20_000, days: int = 60, seed: int = 0,
        survivable_window: float = 3.6) -> ExperimentResult:
    model = FleetModel(n_vswitches=n_vswitches, rng=SeededRng(seed, "fig13"))
    events = model.simulate_daily_overloads(
        days=days,
        activation_sampler=activation_sampler(ControlLatencyModel()),
        survivable_window=survivable_window)
    summary = FleetModel.overload_summary(events)
    result = ExperimentResult(
        name="fig13",
        description="daily overload occurrences before/after Nezha",
        columns=["cause", "before_per_day", "after_per_day",
                 "mitigated_fraction", "paper_mitigated"],
    )
    for kind in HotspotKind:
        before, residual = summary[kind]
        mitigated = 1.0 - residual / before if before else 1.0
        result.add_row(cause=kind.value,
                       before_per_day=before / days,
                       after_per_day=residual / days,
                       mitigated_fraction=mitigated,
                       paper_mitigated=PAPER_MITIGATION[kind])
    result.note(f"{n_vswitches} vSwitches x {days} days; an overload "
                "survives Nezha only when activation exceeds "
                f"{survivable_window}s (≈P999 of Table 4)")
    return result
