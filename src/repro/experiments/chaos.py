"""Chaos soak: seeded fault fuzzing against the full failover control plane.

Not a paper figure. The soak builds the §6.2 testbed plus the §4.4
machinery (health monitor, placement, reconciling controller), offloads
the hot vNIC, drives CRR traffic, and then lets a seeded
:class:`~repro.faults.fuzzer.FaultFuzzer` crash vSwitches, flap links,
partition the monitor, sabotage control RPCs, drop learner pulls, and
kill the controller — all at once, for a fixed horizon.

Invariants from :mod:`repro.faults.invariants` are checked after every
injected event and on a periodic sweep; after the horizon every fault is
force-healed, the system settles, and the strict quiesced invariants must
hold: gateway/learner convergence, no orphaned FEs, no stranded session
state on dead FEs, and exact packet conservation
(delivered + dropped + in-flight == sent, in-flight drained to zero).

``python -m repro.experiments.chaos`` exits non-zero on any violation —
or if the run injected fewer faults than ``--min-faults`` or missed a
fault kind — so CI can gate on a fixed seed.
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, List, Optional, Tuple

from repro.controller import FePlacement, HealthMonitor, NezhaController
from repro.controller.controller import ControllerConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import sweep
from repro.experiments.testbed import build_testbed
from repro.faults import (FaultFuzzer, FaultInjector, FuzzRates,
                          check_quiesced, check_runtime)

DEFAULT_HORIZON = 6.0     # seconds of virtual time under active fuzzing
DEFAULT_SETTLE = 3.0      # post-heal convergence window
DEFAULT_RATE_CPS = 400.0  # open-loop CRR load across the clients
MIN_FAULTS = 200          # acceptance floor for injected fault actions


def run_soak(seed: int = 0, horizon: float = DEFAULT_HORIZON,
             settle: float = DEFAULT_SETTLE,
             rate_cps: float = DEFAULT_RATE_CPS,
             n_clients: int = 3, n_idle: int = 8,
             monitor_interval: float = 0.1,
             check_interval: float = 0.25) -> Dict[str, Any]:
    """One full chaos soak; returns raw counters and violation lists."""
    testbed = build_testbed(n_clients=n_clients, n_idle=n_idle, seed=seed)
    engine = testbed.engine

    # §4.4 machinery on a dedicated monitor host (the last server). Its
    # vSwitch never hosts FEs and is not a probe target, so partitioning
    # the monitor is a pure monitoring failure, not a data-plane one.
    monitor_host = testbed.topo.servers[-1]
    monitor = HealthMonitor(engine, monitor_host,
                            interval=monitor_interval, miss_threshold=3)
    placement = FePlacement(testbed.topo, {})
    # At this testbed's load the FEs idle around 3-7 % CPU; the default
    # 10 % fallback threshold would spontaneously fall everything back two
    # seconds in and leave the fuzzer nothing to break. Treat FEs as idle
    # only when truly unloaded (i.e. once the soak's traffic stops).
    config = ControllerConfig(fallback_threshold=0.02, fallback_polls=30)
    controller = NezhaController(engine, testbed.gateway,
                                 testbed.orchestrator, placement,
                                 config=config, monitor=monitor)
    for vswitch in testbed.vswitches:
        controller.register(vswitch)
    placement.exclude(testbed.vswitches[-1])
    for server in testbed.topo.servers[:-1]:
        monitor.add_target(server)

    handle = testbed.orchestrator.offload(testbed.server_vnic,
                                          testbed.idle_vswitches[:4])
    # A second, under-provisioned offload: the controller's min-FE top-up
    # has to scale it out mid-chaos, keeping control RPCs in flight for
    # the storm windows to sabotage.
    side = testbed.orchestrator.offload(testbed.client_vnics[0],
                                        testbed.idle_vswitches[4:6])
    testbed.run(1.0)
    if handle.completed_at is None or side.completed_at is None:
        raise RuntimeError("initial offload did not complete")
    monitor.start()
    controller.start()

    gens = testbed.start_crr(rate_cps, duration=0.5 + horizon)
    testbed.run(0.5)  # traffic flowing before the first fault lands

    rng = testbed.rng.child("chaos")
    # FE-capable hosts appear twice in the crash-target list: crashes that
    # actually hit FEs drive failover + replacement flows, which is the
    # code under test.
    fe_pool = [vs.name for vs in testbed.idle_vswitches[:-1]]
    rates = FuzzRates(crash=2.0, link_flap=1.5, partition=0.35,
                      rpc_storm=2.0, learner_drop=2.5, kill_controller=0.4)
    fuzzer = FaultFuzzer(rng.child("fuzz"),
                         [vs.name for vs in testbed.vswitches[:-1]] + fe_pool,
                         [s.name for s in testbed.topo.servers[:-1]],
                         rates=rates)
    plan = fuzzer.generate(horizon, start=engine.now)
    injector = FaultInjector(engine, vswitches=testbed.vswitches,
                             topo=testbed.topo,
                             orchestrator=testbed.orchestrator,
                             learners=testbed.learners, monitor=monitor,
                             controller=controller, rng=rng.child("inject"))

    runtime_violations: List[str] = []
    fuzz_end = engine.now + horizon

    def record(tag: str) -> None:
        for text in check_runtime(testbed.orchestrator, testbed.vswitches,
                                  testbed.topo):
            runtime_violations.append(f"[t={engine.now:.3f} {tag}] {text}")

    injector.on_event = lambda event: record(event.kind.value)

    def checker():
        while engine.now < fuzz_end:
            record("periodic")
            yield engine.timeout(check_interval)

    engine.process(checker(), name="invariant-checker")
    plan.schedule(injector)
    testbed.run(horizon)

    # Quiesce: heal everything, let the controller converge, then stop
    # the prober and drain so packet conservation is exact.
    injector.heal_all()
    testbed.run(settle)
    monitor.stop()
    testbed.run(0.5)

    quiesced_violations = check_quiesced(
        testbed.orchestrator, testbed.gateway, testbed.vswitches,
        [testbed.server_vnic] + testbed.client_vnics, testbed.topo)

    return {
        "seed": seed,
        "events": len(plan),
        "kinds": [kind.value for kind in plan.kinds()],
        "injected": dict(sorted(injector.injected.items())),
        "total_injected": injector.total_injected(),
        "runtime_violations": runtime_violations,
        "quiesced_violations": quiesced_violations,
        "offered": sum(g.result.offered for g in gens),
        "completed": sum(g.result.completed for g in gens),
        "failed": sum(g.result.failed for g in gens),
        "failovers": controller.failovers,
        "scale_outs": controller.scale_outs,
        "fallbacks": controller.fallbacks,
        "reconcile_errors": controller.reconcile_errors,
        "rpc_giveups": testbed.orchestrator.rpc_giveups,
        "aborted_offloads": testbed.orchestrator.aborted_offloads,
        "fe_count": len(handle.frontends),
    }


def run_point(point: Tuple[int, float, float]) -> Dict[str, Any]:
    seed, horizon, settle = point
    return run_soak(seed=seed, horizon=horizon, settle=settle)


def run(seed: int = 0, jobs: Optional[int] = 1,
        horizon: float = DEFAULT_HORIZON,
        settle: float = DEFAULT_SETTLE) -> ExperimentResult:
    outcome, = sweep([(seed, horizon, settle)], run_point, jobs=jobs)
    result = ExperimentResult(
        name="chaos",
        description="fault-injection soak over the failover control plane",
        columns=["fault", "count"],
    )
    for key, count in outcome["injected"].items():
        result.add_row(fault=key, count=count)
    result.add_row(fault="TOTAL", count=outcome["total_injected"])
    result.note(f"seed {outcome['seed']}: {outcome['events']} scheduled "
                f"events covering {len(outcome['kinds'])} fault kinds")
    result.note(f"transactions: {outcome['completed']} ok / "
                f"{outcome['failed']} failed of {outcome['offered']} offered")
    result.note(f"control plane: {outcome['failovers']} failovers, "
                f"{outcome['scale_outs']} scale-outs, "
                f"{outcome['fallbacks']} fallbacks, "
                f"{outcome['rpc_giveups']} RPC give-ups, "
                f"{outcome['aborted_offloads']} aborted offloads, "
                f"{outcome['reconcile_errors']} degraded reconcile steps")
    runtime = outcome["runtime_violations"]
    quiesced = outcome["quiesced_violations"]
    result.note(f"invariant violations: {len(runtime)} runtime, "
                f"{len(quiesced)} quiesced")
    for text in (runtime + quiesced)[:10]:
        result.note(f"VIOLATION: {text}")
    return result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.chaos",
        description="Chaos soak; exits 1 on invariant violations.")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--horizon", type=float, default=DEFAULT_HORIZON)
    parser.add_argument("--settle", type=float, default=DEFAULT_SETTLE)
    parser.add_argument("--min-faults", type=int, default=MIN_FAULTS,
                        help="fail if fewer fault actions were injected")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="record telemetry during the soak and export "
                             "it as JSONL to PATH; the unified trace gives "
                             "a post-mortem timeline interleaving injected "
                             "faults with the controller's reactions "
                             "(inspect with tools/telemetry.py timeline)")
    args = parser.parse_args(argv)

    tel = None
    if args.telemetry is not None:
        from repro import telemetry
        tel = telemetry.install(profile=True)
    try:
        outcome = run_soak(seed=args.seed, horizon=args.horizon,
                           settle=args.settle)
        if tel is not None:
            lines = tel.export(args.telemetry)
            print(f"[telemetry: {lines} lines -> {args.telemetry}]")
    finally:
        if tel is not None:
            from repro import telemetry
            telemetry.uninstall()
    print(f"chaos soak (seed {outcome['seed']}): {outcome['events']} events, "
          f"{outcome['total_injected']} fault actions injected")
    for key, count in outcome["injected"].items():
        print(f"  {key}: {count}")
    print(f"transactions: {outcome['completed']} ok / {outcome['failed']} "
          f"failed of {outcome['offered']} offered; "
          f"{outcome['failovers']} failovers, {outcome['scale_outs']} "
          f"scale-outs, {outcome['fallbacks']} fallbacks")

    failures: List[str] = []
    for text in outcome["runtime_violations"]:
        failures.append(f"runtime violation: {text}")
    for text in outcome["quiesced_violations"]:
        failures.append(f"quiesced violation: {text}")
    if outcome["total_injected"] < args.min_faults:
        failures.append(f"only {outcome['total_injected']} fault actions "
                        f"injected (need >= {args.min_faults})")
    missing = set(k.value for k in _all_kinds()) - set(outcome["kinds"])
    if missing:
        failures.append(f"fault kinds never injected: {sorted(missing)}")
    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        return 1
    print("chaos soak passed: zero invariant violations")
    return 0


def _all_kinds():
    from repro.faults import FaultKind
    return list(FaultKind)


if __name__ == "__main__":
    raise SystemExit(main())
