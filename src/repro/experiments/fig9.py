"""Fig 9: performance gain under different #FEs.

Paper: CPS improvement grows with #FEs up to 4, then plateaus ≈3.3x (the
VM kernel becomes the bottleneck); #concurrent flows saturates ≈3.8x;
#vNICs grows proportionally to #FEs.

CPS is measured packet-by-packet: the testbed offloads the server vNIC to
k FEs and drives closed-loop TCP_CRR from four client servers. The two
memory-bound capabilities come from the byte-accounting capacity model
(their constants are the ones the DES charges).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.experiments.capacity import CapacityModel, sweep_gains
from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import sweep
from repro.experiments.testbed import SERVER_IP, build_testbed
from repro.workloads import ClosedLoopCrr, measure_cps

PAPER_CPS_GAIN = {0: 1.0, 1: 1.6, 2: 2.4, 4: 3.3, 6: 3.3, 8: 3.3, 12: 3.3}
PAPER_FLOWS_GAIN = {0: 1.0, 1: 1.3, 2: 2.2, 4: 3.8, 6: 3.8, 8: 3.8, 12: 3.8}
PAPER_VNICS_GAIN_PER_FE = 1.0  # "proportional to #FEs"


def measure_cps_at(n_fes: int, duration: float, warmup: float,
                   concurrency_per_client: int, seed: int) -> float:
    testbed = build_testbed(n_clients=4, n_idle=max(4, n_fes), seed=seed)
    if n_fes:
        handle = testbed.orchestrator.offload(
            testbed.server_vnic, testbed.idle_vswitches[:n_fes])
        testbed.run(1.0)
        if handle.completed_at is None:
            raise RuntimeError("offload did not reach the final stage")
    loops = [ClosedLoopCrr(testbed.engine, app, SERVER_IP, 80,
                           concurrency=concurrency_per_client).start()
             for app in testbed.client_apps]
    return measure_cps(testbed.engine, loops, warmup, duration)


def run_point(point: Tuple[int, float, float, int, int]) -> float:
    """Sweep point: measured CPS for one FE count (own engine/testbed)."""
    n_fes, duration, warmup, concurrency_per_client, seed = point
    return measure_cps_at(n_fes, duration, warmup,
                          concurrency_per_client, seed)


def run(fe_counts: Sequence[int] = (0, 1, 2, 4, 8),
        duration: float = 1.5, warmup: float = 1.0,
        concurrency_per_client: int = 96, seed: int = 0,
        jobs: Optional[int] = 1) -> ExperimentResult:
    points = [(n_fes, duration, warmup, concurrency_per_client, seed)
              for n_fes in fe_counts]
    cps: Dict[int, float] = dict(zip(fe_counts,
                                     sweep(points, run_point, jobs=jobs)))
    baseline = cps.get(0) or next(iter(cps.values()))
    gains = {row["n_fes"]: row
             for row in sweep_gains(fe_counts, model=CapacityModel())}

    result = ExperimentResult(
        name="fig9",
        description="performance gain vs #FEs (CPS measured, "
                    "flows/#vNICs from the memory model)",
        columns=["n_fes", "cps", "cps_gain", "paper_cps_gain",
                 "flows_gain", "paper_flows_gain", "vnics_gain"],
    )
    for n_fes in fe_counts:
        result.add_row(
            n_fes=n_fes,
            cps=cps[n_fes],
            cps_gain=cps[n_fes] / baseline,
            paper_cps_gain=PAPER_CPS_GAIN.get(n_fes, 3.3),
            flows_gain=gains[n_fes]["flows_gain"],
            paper_flows_gain=PAPER_FLOWS_GAIN.get(n_fes, 3.8),
            vnics_gain=gains[n_fes]["vnics_gain"],
        )
    result.note("CPS saturation comes from the VM kernel lock; flows "
                "saturation from local state memory; #vNICs grows with "
                "the FE table grants (slope 1 per FE)")
    return result
