"""Process-pool sweep execution with a deterministic merge.

The paper's packet-level evaluations (Figs 9–12, §6) are sweeps over
*independent* simulation points — FE counts, load levels, vCPU counts,
seeds. Each point builds its own :class:`~repro.sim.engine.Engine` and
testbed, so points share no state and can run on separate CPU cores.

The contract every sweep obeys:

* **Point function.** ``worker`` is a *top-level* (hence picklable)
  function taking one *point* (any picklable value, usually a tuple of
  plain parameters) and returning plain data (floats, dicts, lists —
  never live simulation objects).
* **Determinism.** Results are merged in *submission order*, never in
  completion order, so ``sweep(points, worker, jobs=N)`` returns the
  exact list ``[worker(p) for p in points]`` for every ``N``. Parallel
  output is byte-identical to sequential output.
* **Legacy path.** ``jobs=1`` never touches :mod:`concurrent.futures`:
  it runs the plain in-process loop, preserving the pre-parallel
  execution path exactly (same process, same call order, no pickling).

Workers re-derive their randomness from plain integer seeds carried
inside the point (see :func:`repro.sim.rng.derive_seed`), which is what
makes replication across pool processes reproducible.

:class:`ResidentPool` is the *stateful* counterpart for iterated
computations (the fleet's epoch loop): long-lived worker processes that
receive their state once (``init``), advance it in-process every
round (``step``), and ship it back once at the end (``collect``) — so
per-round IPC carries only the small plain-data payloads and reports,
never the state itself. The determinism story is the same as
:func:`sweep`'s: slots are assigned to workers as contiguous ascending
slices and every reply merges in slot order, so the merged report list
is byte-for-byte what the sequential loop would produce.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro import telemetry as _telemetry
from repro.sim.rng import derive_seed

P = TypeVar("P")
R = TypeVar("R")

#: True inside a sweep() pool worker. A worker that itself calls sweep()
#: (e.g. the fleet experiment running under ``all --jobs N``, or a fleet
#: shard step that fans out again) must not open a nested pool — the
#: outer pool already owns the cores, and nested executors can deadlock
#: on fork. :func:`resolve_jobs` serializes instead.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def default_jobs() -> int:
    """The CLI default: one worker per available CPU core."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int], n_points: int) -> int:
    """Clamp a requested worker count to something sensible.

    ``None`` means "use every core"; a pool larger than the number of
    points only costs fork overhead, so it is trimmed. Inside a pool
    worker the answer is always 1: nested sweeps run in-process (the
    deterministic merge makes this a pure perf decision, not a results
    one).
    """
    if _IN_WORKER:
        return 1
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return max(1, min(jobs, n_points or 1))


def sweep(points: Iterable[P], worker: Callable[[P], R],
          jobs: Optional[int] = None) -> List[R]:
    """Run ``worker(point)`` for every point, in-order.

    With ``jobs == 1`` this is a plain loop in the calling process (the
    exact legacy execution path). With ``jobs > 1`` the points fan out
    over a :class:`~concurrent.futures.ProcessPoolExecutor`; results are
    collected in submission order regardless of which worker finishes
    first, so the returned list — and anything rendered from it — is
    identical to the sequential run.

    A worker that raises re-raises here (after the pool drains), in both
    modes.
    """
    point_list = list(points)
    n_jobs = resolve_jobs(jobs, len(point_list))
    if n_jobs == 1:
        return [worker(point) for point in point_list]
    with ProcessPoolExecutor(max_workers=n_jobs,
                             initializer=_mark_worker) as pool:
        futures = [pool.submit(worker, point) for point in point_list]
        # future.result() in submission order IS the deterministic merge.
        return [future.result() for future in futures]


def point_seeds(seed: int, label: str, points: Sequence[Any]) -> List[int]:
    """Independent per-point seeds for a replicated sweep.

    Each point gets ``derive_seed(seed, f"{label}/{i}")`` — stable under
    reordering of execution (the seed depends on the point's *position*,
    not on which worker runs it) and collision-free across root seeds.
    """
    return [derive_seed(seed, f"{label}/{index}")
            for index in range(len(points))]


# -- resident (actor-style) worker pool -------------------------------------

class ResidentWorkerError(RuntimeError):
    """A resident worker raised, died, or went unreachable mid-run."""


def _resident_worker_main(conn, worker_fn) -> None:
    """Worker-process loop: hold assigned states in-process, apply
    ``worker_fn(state, payload)`` per slot on every ``step``.

    Slots are processed in ascending slot order inside the worker;
    combined with contiguous slot assignment across workers, replies
    concatenate into global slot order at the coordinator. Exceptions
    are caught and shipped back as ``("error", traceback, None)`` so the
    coordinator can re-raise with context instead of losing the worker.

    Every reply is ``(status, value, meta)`` where ``meta`` carries the
    worker-side runtime instrumentation: ``wall_s`` (time spent inside
    the handler, measured on the worker's own clock — no cross-process
    clock comparison) and ``recv_wait_s`` (cumulative time blocked
    waiting for the coordinator's next message: the queue wait).
    Instrumentation never touches the reply *values*, so reports stay
    byte-identical with or without anyone reading the meta.
    """
    _mark_worker()  # nested sweep()s inside worker_fn must serialize
    states: dict = {}
    recv_wait_s = 0.0
    try:
        while True:
            wait_started = perf_counter()
            try:
                blob = conn.recv_bytes()
            except EOFError:
                return          # coordinator went away; nothing to save
            recv_wait_s += perf_counter() - wait_started
            message = pickle.loads(blob)
            kind = message[0]
            started = perf_counter()
            try:
                if kind == "init":
                    for slot, state in message[1]:
                        states[slot] = state
                    value = None
                elif kind == "step":
                    payload = message[1]
                    value = []
                    for slot in sorted(states):
                        states[slot], report = worker_fn(states[slot],
                                                         payload)
                        value.append(report)
                elif kind == "collect":
                    value = [states[slot] for slot in sorted(states)]
                elif kind == "stop":
                    conn.send_bytes(pickle.dumps(("ok", None, None)))
                    return
                else:
                    raise ValueError(f"unknown message kind {kind!r}")
                meta = {"wall_s": perf_counter() - started,
                        "recv_wait_s": recv_wait_s}
                reply = ("ok", value, meta)
            except Exception:
                reply = ("error", traceback.format_exc(), None)
            conn.send_bytes(pickle.dumps(reply,
                                         protocol=pickle.HIGHEST_PROTOCOL))
    finally:
        conn.close()


class ResidentPool:
    """Persistent worker processes holding per-slot state in-process.

    The actor-style counterpart to :func:`sweep` for *iterated* stateful
    computations: ``sweep`` round-trips every point — state included —
    through pickle on every call, which is fine for independent points
    but makes an epoch loop over tens of megabytes of shard state pay
    the serialization cost ``epochs`` times. A resident pool ships each
    state across the process boundary exactly twice (``init`` in,
    ``collect`` out); every :meth:`step` carries only a small broadcast
    payload out and plain-data reports back.

    Contract:

    * ``worker_fn`` is a top-level picklable callable
      ``(state, payload) -> (state, report)`` returning the advanced
      state plus a plain-data report (the :func:`sweep` point contract,
      curried over the resident state).
    * **Determinism.** Slot ``i`` of ``states`` keeps identity ``i`` for
      the pool's lifetime. Slots are assigned to workers as contiguous
      ascending slices, each worker steps its slots in ascending order,
      and :meth:`step`/:meth:`collect` merge replies in worker =
      ascending-slot order — so the merged lists are identical to the
      sequential ``[worker_fn(s, payload) for s in states]``.
    * **Degenerate pool.** With one effective worker (``jobs=1``, one
      slot, or inside an existing pool worker) no process is spawned:
      the pool runs the exact legacy in-process loop (same call order,
      no pickling, zero IPC) — the ``sweep(jobs=1)`` guarantee.
    * **Failure.** A worker that raises ships its traceback back and
      the coordinator raises :class:`ResidentWorkerError`; a worker
      that *dies* (kill, OOM) is detected by the reply poll loop and
      surfaced the same way instead of hanging the run.

    IPC accounting: every pickled message is counted, split by phase —
    ``init_ipc_bytes``, ``step_ipc_bytes`` (one entry per step call),
    ``collect_ipc_bytes`` — which is what lets callers *prove* state
    residency: step traffic stays flat while resident state grows.
    """

    def __init__(self, worker_fn: Callable[[Any, Any], Any],
                 states: Sequence[Any], jobs: Optional[int] = None) -> None:
        self._states = list(states)
        n_slots = len(self._states)
        if n_slots == 0:
            raise ValueError("ResidentPool needs at least one state slot")
        self._jobs = resolve_jobs(jobs, n_slots)
        self._workers: List[dict] = []
        self._closed = False
        self.init_ipc_bytes = 0
        self.step_ipc_bytes: List[int] = []
        self.collect_ipc_bytes = 0
        #: Coordinator-side wall clock per phase ("step" is per call).
        self.phase_wall_s: dict = {"init": 0.0, "step": [], "collect": 0.0}
        #: Per-worker runtime accounting from reply meta (worker-side
        #: clocks): handler wall per phase, cumulative recv wait, steps.
        #: The degenerate in-process pool keeps one pseudo-worker entry
        #: so "--jobs 1 vs 2" reads from the same artifact shape.
        self.worker_runtime: List[dict] = [
            {"steps": 0, "init_wall_s": 0.0, "step_wall_s": 0.0,
             "collect_wall_s": 0.0, "recv_wait_s": 0.0}
            for _ in range(self._jobs)]
        tel = _telemetry.current()
        if tel is not None:
            tel.register_resident_pool(self)
        if self._jobs == 1:
            self._worker_fn = worker_fn
            return
        # Contiguous ascending slot slices, sizes differing by at most
        # one — the partition() shape, so reply concatenation walks the
        # slot space in order.
        base, extra = divmod(n_slots, self._jobs)
        lo = 0
        ctx = multiprocessing.get_context()
        for w in range(self._jobs):
            hi = lo + base + (1 if w < extra else 0)
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_resident_worker_main,
                args=(child_conn, worker_fn),
                name=f"resident-worker-{w}", daemon=True)
            process.start()
            child_conn.close()
            self._workers.append({"process": process, "conn": parent_conn,
                                  "slots": range(lo, hi)})
            lo = hi
        init_started = perf_counter()
        sent = 0
        for worker in self._workers:
            sent += self._send(worker, (
                "init", [(slot, self._states[slot])
                         for slot in worker["slots"]]))
        received = 0
        for w, worker in enumerate(self._workers):
            _value, nbytes, meta = self._recv(worker)
            received += nbytes
            self._account(w, "init", meta)
        self.init_ipc_bytes = sent + received
        self.phase_wall_s["init"] = perf_counter() - init_started
        # States now live in the workers; drop the coordinator copies so
        # residency is real (and measurable), not a cached duplicate.
        self._states = None

    # -- transport ----------------------------------------------------------

    def _send(self, worker: dict, message) -> int:
        blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        try:
            worker["conn"].send_bytes(blob)
        except (BrokenPipeError, OSError):
            raise self._death(worker) from None
        return len(blob)

    def _recv(self, worker: dict):
        """One reply, with liveness polling — a dead worker raises a
        :class:`ResidentWorkerError` naming it instead of blocking on a
        pipe that will never be written."""
        conn = worker["conn"]
        while not conn.poll(0.05):
            if not worker["process"].is_alive():
                raise self._death(worker)
        try:
            blob = conn.recv_bytes()
        except EOFError:
            raise self._death(worker) from None
        status, value, meta = pickle.loads(blob)
        if status == "error":
            raise ResidentWorkerError(
                f"resident worker {worker['process'].name} "
                f"(slots {worker['slots'][0]}..{worker['slots'][-1]}) "
                f"raised:\n{value}")
        return value, len(blob), meta

    def _account(self, w: int, phase: str, meta) -> None:
        """Fold one reply's worker-side meta into the runtime totals."""
        if meta is None:
            return
        runtime = self.worker_runtime[w]
        runtime[f"{phase}_wall_s"] += meta["wall_s"]
        runtime["recv_wait_s"] = meta["recv_wait_s"]
        if phase == "step":
            runtime["steps"] += 1

    def _death(self, worker: dict) -> ResidentWorkerError:
        process = worker["process"]
        return ResidentWorkerError(
            f"resident worker {process.name} "
            f"(slots {worker['slots'][0]}..{worker['slots'][-1]}) died "
            f"with exit code {process.exitcode}; its resident state is "
            f"lost — rerun, or rerun with resident mode off")

    # -- the actor protocol --------------------------------------------------

    def step(self, payload) -> List[Any]:
        """Broadcast ``payload``; returns per-slot reports in slot order."""
        if self._closed:
            raise ResidentWorkerError("pool is closed")
        started = perf_counter()
        if self._jobs == 1:
            reports = []
            for slot, state in enumerate(self._states):
                self._states[slot], report = self._worker_fn(state, payload)
                reports.append(report)
            self.step_ipc_bytes.append(0)
            wall = perf_counter() - started
            self.phase_wall_s["step"].append(wall)
            runtime = self.worker_runtime[0]
            runtime["step_wall_s"] += wall
            runtime["steps"] += 1
            return reports
        sent = sum(self._send(worker, ("step", payload))
                   for worker in self._workers)
        reports = []
        received = 0
        for w, worker in enumerate(self._workers):
            replies, nbytes, meta = self._recv(worker)
            reports.extend(replies)
            received += nbytes
            self._account(w, "step", meta)
        self.step_ipc_bytes.append(sent + received)
        self.phase_wall_s["step"].append(perf_counter() - started)
        return reports

    def collect(self) -> List[Any]:
        """Ship the final states back; returns them in slot order."""
        if self._closed:
            raise ResidentWorkerError("pool is closed")
        started = perf_counter()
        if self._jobs == 1:
            wall = perf_counter() - started
            self.phase_wall_s["collect"] = wall
            self.worker_runtime[0]["collect_wall_s"] += wall
            return list(self._states)
        sent = sum(self._send(worker, ("collect",))
                   for worker in self._workers)
        states = []
        received = 0
        for w, worker in enumerate(self._workers):
            replies, nbytes, meta = self._recv(worker)
            states.extend(replies)
            received += nbytes
            self._account(w, "collect", meta)
        self.collect_ipc_bytes = sent + received
        self.phase_wall_s["collect"] = perf_counter() - started
        return states

    def close(self) -> None:
        """Stop the workers; idempotent, safe after a worker death."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker["conn"].send_bytes(pickle.dumps(("stop",)))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker["process"].join(timeout=5.0)
            if worker["process"].is_alive():
                worker["process"].terminate()
                worker["process"].join(timeout=1.0)
            worker["conn"].close()

    @property
    def jobs(self) -> int:
        """Effective worker count (1 = in-process degenerate pool)."""
        return self._jobs

    def ipc_bytes_per_step(self) -> float:
        """Mean IPC bytes per :meth:`step` call so far (0 in-process)."""
        if not self.step_ipc_bytes:
            return 0.0
        return sum(self.step_ipc_bytes) / len(self.step_ipc_bytes)

    def alive(self) -> List[bool]:
        """Per-worker liveness (the in-process pool is "alive" until
        closed). Safe to call after :meth:`close`."""
        if self._jobs == 1:
            return [not self._closed]
        return [worker["process"].is_alive() for worker in self._workers]

    def runtime_stats(self) -> dict:
        """Plain-data runtime instrumentation: coordinator-side phase
        walls, per-worker handler walls / queue waits / liveness, and
        the IPC byte accounting — the "wall clock vs --jobs" artifact."""
        return {
            "jobs": self._jobs,
            "phase_wall_s": {"init": self.phase_wall_s["init"],
                             "step": list(self.phase_wall_s["step"]),
                             "collect": self.phase_wall_s["collect"]},
            "workers": [dict(runtime, alive=alive)
                        for runtime, alive in zip(self.worker_runtime,
                                                  self.alive())],
            "ipc": {"init_bytes": self.init_ipc_bytes,
                    "step_bytes": list(self.step_ipc_bytes),
                    "collect_bytes": self.collect_ipc_bytes},
        }

    def __enter__(self) -> "ResidentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
