"""Process-pool sweep execution with a deterministic merge.

The paper's packet-level evaluations (Figs 9–12, §6) are sweeps over
*independent* simulation points — FE counts, load levels, vCPU counts,
seeds. Each point builds its own :class:`~repro.sim.engine.Engine` and
testbed, so points share no state and can run on separate CPU cores.

The contract every sweep obeys:

* **Point function.** ``worker`` is a *top-level* (hence picklable)
  function taking one *point* (any picklable value, usually a tuple of
  plain parameters) and returning plain data (floats, dicts, lists —
  never live simulation objects).
* **Determinism.** Results are merged in *submission order*, never in
  completion order, so ``sweep(points, worker, jobs=N)`` returns the
  exact list ``[worker(p) for p in points]`` for every ``N``. Parallel
  output is byte-identical to sequential output.
* **Legacy path.** ``jobs=1`` never touches :mod:`concurrent.futures`:
  it runs the plain in-process loop, preserving the pre-parallel
  execution path exactly (same process, same call order, no pickling).

Workers re-derive their randomness from plain integer seeds carried
inside the point (see :func:`repro.sim.rng.derive_seed`), which is what
makes replication across pool processes reproducible.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.sim.rng import derive_seed

P = TypeVar("P")
R = TypeVar("R")

#: True inside a sweep() pool worker. A worker that itself calls sweep()
#: (e.g. the fleet experiment running under ``all --jobs N``, or a fleet
#: shard step that fans out again) must not open a nested pool — the
#: outer pool already owns the cores, and nested executors can deadlock
#: on fork. :func:`resolve_jobs` serializes instead.
_IN_WORKER = False


def _mark_worker() -> None:
    global _IN_WORKER
    _IN_WORKER = True


def default_jobs() -> int:
    """The CLI default: one worker per available CPU core."""
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int], n_points: int) -> int:
    """Clamp a requested worker count to something sensible.

    ``None`` means "use every core"; a pool larger than the number of
    points only costs fork overhead, so it is trimmed. Inside a pool
    worker the answer is always 1: nested sweeps run in-process (the
    deterministic merge makes this a pure perf decision, not a results
    one).
    """
    if _IN_WORKER:
        return 1
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return max(1, min(jobs, n_points or 1))


def sweep(points: Iterable[P], worker: Callable[[P], R],
          jobs: Optional[int] = None) -> List[R]:
    """Run ``worker(point)`` for every point, in-order.

    With ``jobs == 1`` this is a plain loop in the calling process (the
    exact legacy execution path). With ``jobs > 1`` the points fan out
    over a :class:`~concurrent.futures.ProcessPoolExecutor`; results are
    collected in submission order regardless of which worker finishes
    first, so the returned list — and anything rendered from it — is
    identical to the sequential run.

    A worker that raises re-raises here (after the pool drains), in both
    modes.
    """
    point_list = list(points)
    n_jobs = resolve_jobs(jobs, len(point_list))
    if n_jobs == 1:
        return [worker(point) for point in point_list]
    with ProcessPoolExecutor(max_workers=n_jobs,
                             initializer=_mark_worker) as pool:
        futures = [pool.submit(worker, point) for point in point_list]
        # future.result() in submission order IS the deterministic merge.
        return [future.result() for future in futures]


def point_seeds(seed: int, label: str, points: Sequence[Any]) -> List[int]:
    """Independent per-point seeds for a replicated sweep.

    Each point gets ``derive_seed(seed, f"{label}/{i}")`` — stable under
    reordering of execution (the seed depends on the point's *position*,
    not on which worker runs it) and collision-free across root seeds.
    """
    return [derive_seed(seed, f"{label}/{index}")
            for index in range(len(points))]
