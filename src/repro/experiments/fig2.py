"""Fig 2: CPU usage of high-CPS VMs and of their vSwitches.

Paper: for VMs demanding high CPS, the *vSwitch* CPU exceeds 95 % in all
cases while 90 % of the VMs themselves sit below 60 % CPU — the VM easily
overwhelms its SmartNIC.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.common import ExperimentResult
from repro.experiments.parallel import point_seeds, sweep
from repro.experiments.testbed import SERVER_IP, build_testbed
from repro.metrics.percentiles import percentile
from repro.workloads import ClosedLoopCrr


def run_point(point: Tuple[int, float, int]) -> Tuple[float, float]:
    """Sweep point: one saturated high-CPS VM (a fresh seeded testbed).

    Returns ``(vm_cpu, vswitch_cpu)`` utilization fractions.
    """
    vm_seed, duration, concurrency_per_client = point
    testbed = build_testbed(n_clients=4, n_idle=2, seed=vm_seed)
    loops = [ClosedLoopCrr(testbed.engine, app, SERVER_IP, 80,
                           concurrency=concurrency_per_client).start()
             for app in testbed.client_apps]
    testbed.run(1.0 + duration)
    for loop in loops:
        loop.stop()
    vm = testbed.server_vm
    vm_util = max(vm.cpu.utilization(), vm.kernel_lock.utilization())
    return vm_util, testbed.server_vswitch.cpu_utilization()


def run(n_vms: int = 8, duration: float = 1.5,
        concurrency_per_client: int = 96, seed: int = 0,
        jobs: Optional[int] = 1) -> ExperimentResult:
    """Each sample is one saturated high-CPS VM (an independent point)."""
    seeds = point_seeds(seed, "fig2/vm", range(n_vms))
    points = [(vm_seed, duration, concurrency_per_client)
              for vm_seed in seeds]
    samples = sweep(points, run_point, jobs=jobs)
    vm_utils = [vm for vm, _vs in samples]
    vswitch_utils = [vs for _vm, vs in samples]

    result = ExperimentResult(
        name="fig2",
        description="CPU of high-CPS VMs vs their vSwitches (fractions)",
        columns=["vm", "vm_cpu", "vswitch_cpu"],
    )
    for index, (vm_util, vs_util) in enumerate(zip(vm_utils, vswitch_utils)):
        result.add_row(vm=index, vm_cpu=vm_util, vswitch_cpu=vs_util)
    result.add_row(vm="P90(vm)", vm_cpu=percentile(vm_utils, 90),
                   vswitch_cpu=percentile(vswitch_utils, 90))
    result.note("paper: vSwitch CPU > 95% in all cases; 90% of VMs < 60%")
    return result
