"""Fig 15: average state size in a region (5–8 B vs the fixed 64 B slot).

Paper §7.1: with variable-length states the average useful state is
5–8 B, so variable sizing could lift #concurrent flows by up to
64 B / 8 B = 8x. We synthesize a session population with a realistic NF
mix — most flows need only the first-packet direction + FSM, a minority
carry statistics policies or decap addresses — and measure
``SessionState.variable_size`` per "region" (seeded sub-population).
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult
from repro.net.addr import IPv4Address
from repro.sim.rng import SeededRng
from repro.vswitch.actions import Direction
from repro.vswitch.state import SessionState, StatsPolicy
from repro.vswitch.tcp_fsm import TcpState

# NF mix per region: (P[stats policy], P[stateful decap]) — regions with
# more flow-logging or LB real servers carry heavier state.
REGION_MIXES = {
    "region-a": (0.005, 0.01),
    "region-b": (0.02, 0.02),
    "region-c": (0.05, 0.05),
    "region-d": (0.10, 0.08),
    "region-e": (0.11, 0.07),
}

FIXED_SLOT = 64


def _sample_state(rng: SeededRng, p_stats: float, p_decap: float
                  ) -> SessionState:
    state = SessionState(
        first_direction=Direction.TX if rng.random() < 0.6 else Direction.RX)
    state.tcp_state = (TcpState.ESTABLISHED if rng.random() < 0.85
                       else TcpState.SYN_SENT)
    if rng.random() < p_stats:
        state.stats_policy = rng.choice([StatsPolicy.BYTES,
                                         StatsPolicy.PACKETS,
                                         StatsPolicy.FULL])
    if rng.random() < p_decap:
        state.decap_overlay_src = IPv4Address(rng.randint(1, 2**32 - 1))
    return state


def run(sessions_per_region: int = 20_000, seed: int = 0) -> ExperimentResult:
    rng = SeededRng(seed, "fig15")
    result = ExperimentResult(
        name="fig15",
        description="average variable-length state size per region (bytes)",
        columns=["region", "avg_state_bytes", "paper_range",
                 "flows_headroom_x"],
    )
    averages: List[float] = []
    for region, (p_stats, p_decap) in REGION_MIXES.items():
        region_rng = rng.child(region)
        sizes = [_sample_state(region_rng, p_stats, p_decap).variable_size()
                 for _ in range(sessions_per_region)]
        avg = sum(sizes) / len(sizes)
        averages.append(avg)
        result.add_row(region=region, avg_state_bytes=avg,
                       paper_range="5-8",
                       flows_headroom_x=FIXED_SLOT / avg)
    overall = sum(averages) / len(averages)
    result.note(f"overall average {overall:.1f}B -> up to "
                f"{FIXED_SLOT / overall:.1f}x more flows with "
                f"variable-length states (paper: up to 8x)")
    return result
