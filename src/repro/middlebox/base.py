"""Middlebox vSwitch-side profiles.

A profile captures what the middlebox's vNIC demands from its vSwitch:
the rule-table chain composition (how expensive a slow-path lookup is),
the bulk rule-table size (what #vNICs is bounded by), and the session
longevity (what the session table holds). Table 3's differences between
LB / NAT / TR come from these profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.addr import IPv4Address
from repro.vswitch.actions import Verdict
from repro.vswitch.costs import MB, CostModel
from repro.vswitch.rule_tables import (AclRule, AclTable, MappingTable,
                                       PolicyRouteTable, QosTable,
                                       RouteTable)
from repro.vswitch.slow_path import SlowPath
from repro.vswitch.vswitch import make_standard_chain


@dataclass
class MiddleboxProfile:
    """vSwitch-side footprint of one middlebox type."""

    name: str
    has_acl: bool                    # TR bypasses the ACL (§6.3.1)
    acl_rules: int                   # access-control richness
    advanced_chain: bool             # mirrors/flow-log/policy routing
    table_memory_prod: int           # bulk rule tables, production bytes
    session_hold_time: float         # how long sessions linger (LB >> NAT)
    scale: float = 50.0              # testbed scaling divisor

    @property
    def table_memory_bytes(self) -> int:
        return int(self.table_memory_prod / self.scale)

    def build_chain(self, cost_model: CostModel) -> SlowPath:
        """The vNIC rule-table chain this middlebox type requires."""
        if self.has_acl:
            rules = [AclRule(priority=i + 10, verdict=Verdict.ACCEPT,
                             dst_port_range=(1, 65535))
                     for i in range(self.acl_rules)]
            acl = AclTable(rules)
            return make_standard_chain(cost_model, acl=acl,
                                       advanced=self.advanced_chain)
        # ACL-bypassing chain (transit router): 4 tables.
        tables = [QosTable(), PolicyRouteTable(), RouteTable(),
                  MappingTable(entry_bytes=cost_model.mapping_entry_bytes)]
        tables[2].add_route(IPv4Address("0.0.0.0"), 0)
        return SlowPath(tables, cost_model)


def lb_profile(scale: float = 50.0) -> MiddleboxProfile:
    """Server Load Balancer: ACL + advanced features, the largest session
    table (persistent real-server connections)."""
    return MiddleboxProfile(
        name="load-balancer", has_acl=True, acl_rules=200,
        advanced_chain=True, table_memory_prod=120 * MB,
        session_hold_time=120.0, scale=scale)


def nat_profile(scale: float = 50.0) -> MiddleboxProfile:
    """NAT gateway: ACL lookups, short-lived translations."""
    return MiddleboxProfile(
        name="nat-gateway", has_acl=True, acl_rules=300,
        advanced_chain=True, table_memory_prod=100 * MB,
        session_hold_time=8.0, scale=scale)


def tr_profile(scale: float = 50.0) -> MiddleboxProfile:
    """Transit router: bypasses the ACL — the simplest rule lookup."""
    return MiddleboxProfile(
        name="transit-router", has_acl=False, acl_rules=0,
        advanced_chain=False, table_memory_prod=100 * MB,
        session_hold_time=8.0, scale=scale)
