"""A transit router application (§6.3.1).

Connects VPCs: packets arriving on one attachment vNIC are re-emitted on
the attachment that owns the destination VPC. The TR's vSwitch chain
bypasses the ACL, making its slow-path lookup the cheapest of the three
middleboxes — and its CPS gain from Nezha the smallest (3×, Table 3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.host.vm import Vm
from repro.net.addr import IPv4Address
from repro.net.packet import Packet
from repro.net.tcp import TcpHeader
from repro.vswitch.vnic import Vnic


class TransitRouterApp:
    """Routes between VPC attachments by destination prefix."""

    def __init__(self, vm: Vm) -> None:
        self.vm = vm
        self.attachments: List[Vnic] = []
        # (prefix value, length) -> attachment vNIC
        self._routes: List[Tuple[IPv4Address, int, Vnic]] = []
        self.forwarded = 0
        self.no_route_drops = 0
        self._seen_flows: Dict[tuple, bool] = {}

    def attach(self, vnic: Vnic) -> None:
        """Add a VPC attachment; its inbound traffic enters the router."""
        self.attachments.append(vnic)
        vnic.attach_guest(lambda pkt, v=vnic: self._on_packet(v, pkt))

    def add_route(self, prefix: IPv4Address, length: int,
                  attachment: Vnic) -> None:
        self._routes.append((prefix, length, attachment))
        # Longest prefix first.
        self._routes.sort(key=lambda r: -r[1])

    def _lookup(self, dst: IPv4Address) -> Optional[Vnic]:
        for prefix, length, vnic in self._routes:
            if dst.in_prefix(prefix, length):
                return vnic
        return None

    def _on_packet(self, in_vnic: Vnic, packet: Packet) -> None:
        ip = packet.inner_ipv4()
        out_vnic = self._lookup(ip.dst)
        if out_vnic is None or out_vnic is in_vnic:
            self.no_route_drops += 1
            return
        tcp = packet.find(TcpHeader)
        flow_key = (ip.src.value, ip.dst.value,
                    tcp.src_port if tcp else 0, tcp.dst_port if tcp else 0)
        new_conn = flow_key not in self._seen_flows
        self._seen_flows[flow_key] = True
        out = Packet(list(packet.layers), packet.payload, dict(packet.meta))
        self.forwarded += 1
        self.vm.send(out_vnic, out, new_connection=new_conn)
