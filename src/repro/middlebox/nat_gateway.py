"""A NAT44 gateway application (§6.3.1).

Translates internal clients to an external address with per-flow port
mappings. Runs in a middlebox VM with two vNICs: internal (tenant VPC
side) and external. The vSwitch serves both vNICs — which is what Nezha
accelerates.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import ResourceExhausted
from repro.host.vm import Vm
from repro.net.addr import IPv4Address
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags, TcpHeader
from repro.vswitch.vnic import Vnic


class NatGatewayApp:
    """Port-translating NAT between an internal and an external vNIC."""

    def __init__(self, vm: Vm, internal_vnic: Vnic, external_vnic: Vnic,
                 port_range: Tuple[int, int] = (10000, 60000)) -> None:
        self.vm = vm
        self.internal = internal_vnic
        self.external = external_vnic
        self.port_lo, self.port_hi = port_range
        self._next_port = self.port_lo
        # (client ip value, client port, dst ip value, dst port) -> ext port
        self._forward: Dict[Tuple[int, int, int, int], int] = {}
        # ext port -> (client ip, client port, dst ip value, dst port)
        self._reverse: Dict[int, Tuple[IPv4Address, int, int, int]] = {}
        self.translations = 0
        self.forwarded_out = 0
        self.forwarded_in = 0
        self.port_exhaustion_drops = 0
        # The NAT accepts any inbound port on both vNICs.
        internal_vnic.attach_guest(self._on_internal)
        external_vnic.attach_guest(self._on_external)

    # -- outbound ------------------------------------------------------------------

    def _alloc_port(self) -> int:
        for _ in range(self.port_hi - self.port_lo):
            port = self._next_port
            self._next_port += 1
            if self._next_port >= self.port_hi:
                self._next_port = self.port_lo
            if port not in self._reverse:
                return port
        raise ResourceExhausted("NAT port range exhausted")

    def _on_internal(self, packet: Packet) -> None:
        """Client -> internet: rewrite source to the external address."""
        tcp = packet.find(TcpHeader)
        ip = packet.inner_ipv4()
        if tcp is None:
            return
        key = (ip.src.value, tcp.src_port, ip.dst.value, tcp.dst_port)
        ext_port = self._forward.get(key)
        new_conn = False
        if ext_port is None:
            try:
                ext_port = self._alloc_port()
            except ResourceExhausted:
                self.port_exhaustion_drops += 1
                return
            self._forward[key] = ext_port
            self._reverse[ext_port] = (ip.src, tcp.src_port,
                                       ip.dst.value, tcp.dst_port)
            self.translations += 1
            new_conn = True
        out = Packet.tcp(self.external.tenant_ip, ip.dst, ext_port,
                         tcp.dst_port, tcp.flags, packet.payload)
        self.forwarded_out += 1
        self.vm.send(self.external, out, new_connection=new_conn)

    # -- inbound ---------------------------------------------------------------------

    def _on_external(self, packet: Packet) -> None:
        """Internet -> client: restore the original address."""
        tcp = packet.find(TcpHeader)
        if tcp is None:
            return
        mapping = self._reverse.get(tcp.dst_port)
        if mapping is None:
            return
        client_ip, client_port, _dst_value, _dst_port = mapping
        back = Packet.tcp(packet.inner_ipv4().src, client_ip,
                          tcp.src_port, client_port, tcp.flags,
                          packet.payload)
        # Emit toward the client via the internal vNIC; the inner source
        # stays the external peer's address, as real NAT return traffic does.
        back.inner_ipv4().src = packet.inner_ipv4().src
        back.invalidate_flow_cache()
        self.forwarded_in += 1
        self.vm.send(self.internal, back)

    def active_translations(self) -> int:
        return len(self._reverse)
