"""Cloud middleboxes (§6.3): the three production services Nezha serves.

Each middlebox is a VM-resident application whose vNIC is served by the
simulated vSwitch — exactly the deployment shape in the paper, where
Nezha offloads the *middlebox instances'* vNICs. The three differ in the
vSwitch-side profile that drives their Table 3 rows:

* **Load balancer** (SLB): ACL-bearing advanced chain, O(100 MB) rule
  tables, massive long-lived backend sessions → biggest session table;
* **NAT gateway**: ACL-bearing chain, short-lived translations;
* **Transit router**: *bypasses the ACL* → the simplest lookup and hence
  the smallest CPS gain from offloading (3× vs 4–4.4×).
"""

from repro.middlebox.base import MiddleboxProfile, lb_profile, nat_profile, tr_profile
from repro.middlebox.load_balancer import SlbApp
from repro.middlebox.nat_gateway import NatGatewayApp
from repro.middlebox.transit_router import TransitRouterApp

__all__ = [
    "MiddleboxProfile", "lb_profile", "nat_profile", "tr_profile",
    "SlbApp", "NatGatewayApp", "TransitRouterApp",
]
