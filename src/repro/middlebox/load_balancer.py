"""An L4 load balancer application (SLB, §6.3.1).

Terminates client transactions on a VIP and proxies the request to a real
server (RS) over *persistent* backend connections — the pattern that
bloats session tables ("some L4 load balancers maintain persistent
connections for each client", §2.2.2). RS vNICs should have stateful
decap enabled (§5.2) so their responses return through the LB.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.host.vm import Vm
from repro.net.addr import IPv4Address
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags, TcpHeader
from repro.sim.rng import SeededRng
from repro.vswitch.vnic import Vnic


class SlbApp:
    """VIP-terminating proxy with per-RS persistent backend connections."""

    def __init__(self, vm: Vm, vnic: Vnic, vip_port: int,
                 real_servers: List[IPv4Address], rs_port: int = 8080,
                 rng: Optional[SeededRng] = None) -> None:
        self.vm = vm
        self.vnic = vnic
        self.vip_port = vip_port
        self.real_servers = list(real_servers)
        self.rs_port = rs_port
        self.rng = rng or SeededRng(0, "slb")
        # RS ip value -> (backend sport, established?)
        self._backends: Dict[int, Tuple[int, bool]] = {}
        self._next_backend_port = 30000
        # backend sport -> pending client (ip, port) awaiting the response
        self._pending: Dict[int, Tuple[IPv4Address, int]] = {}
        self.client_transactions = 0
        self.proxied_requests = 0
        self.responses_returned = 0
        vm.listen(vnic, vip_port, self._on_client_packet)

    # -- client side --------------------------------------------------------------

    def _on_client_packet(self, packet: Packet) -> None:
        tcp = packet.find(TcpHeader)
        if tcp is None:
            return
        client_ip = packet.inner_ipv4().src
        if tcp.flags.syn and not tcp.flags.ack:
            self.client_transactions += 1
            self._send(client_ip, tcp.src_port, self.vip_port,
                       TcpFlags.of("syn", "ack"))
        elif tcp.flags.psh:
            self._proxy_request(client_ip, tcp.src_port, packet.payload)
        elif tcp.flags.fin:
            self._send(client_ip, tcp.src_port, self.vip_port,
                       TcpFlags.of("fin", "ack"))

    def _send(self, dst_ip: IPv4Address, dst_port: int, src_port: int,
              flags: TcpFlags, payload: bytes = b"",
              new_connection: bool = False) -> None:
        pkt = Packet.tcp(self.vnic.tenant_ip, dst_ip, src_port, dst_port,
                         flags, payload)
        self.vm.send(self.vnic, pkt, new_connection=new_connection)

    # -- backend side ----------------------------------------------------------------

    def _pick_rs(self) -> IPv4Address:
        return self.rng.choice(self.real_servers)

    def _backend_for(self, rs: IPv4Address) -> Tuple[int, bool]:
        entry = self._backends.get(rs.value)
        if entry is None:
            sport = self._next_backend_port
            self._next_backend_port += 1
            self.vm.listen(self.vnic, sport,
                           lambda pkt, p=sport: self._on_rs_packet(p, pkt))
            self._backends[rs.value] = (sport, False)
            # Open the persistent connection.
            self._send(rs, self.rs_port, sport, TcpFlags.of("syn"),
                       new_connection=True)
            entry = self._backends[rs.value]
        return entry

    def _proxy_request(self, client_ip: IPv4Address, client_port: int,
                       payload: bytes) -> None:
        rs = self._pick_rs()
        sport, established = self._backend_for(rs)
        self._pending[sport] = (client_ip, client_port)
        if established:
            self.proxied_requests += 1
            self._send(rs, self.rs_port, sport,
                       TcpFlags.of("psh", "ack"), payload)
        else:
            # Queue behind the handshake; _on_rs_packet flushes it.
            self._backends[rs.value] = (sport, False)
            self._pending[sport] = (client_ip, client_port)

    def _on_rs_packet(self, sport: int, packet: Packet) -> None:
        tcp = packet.find(TcpHeader)
        if tcp is None:
            return
        rs_ip = packet.inner_ipv4().src
        if tcp.flags.syn and tcp.flags.ack:
            self._backends[rs_ip.value] = (sport, True)
            pending = self._pending.get(sport)
            if pending is not None:
                self.proxied_requests += 1
                self._send(rs_ip, self.rs_port, sport,
                           TcpFlags.of("psh", "ack"), b"q")
        elif tcp.flags.psh:
            pending = self._pending.pop(sport, None)
            if pending is not None:
                client_ip, client_port = pending
                self.responses_returned += 1
                self._send(client_ip, client_port, self.vip_port,
                           TcpFlags.of("psh", "ack"), packet.payload)

    @property
    def persistent_backends(self) -> int:
        return sum(1 for _sport, up in self._backends.values() if up)
