"""The SmartNIC: the card, its vSwitch slice, and its co-tenants."""

from __future__ import annotations

from typing import Optional

from repro.fabric.device import ServerNode
from repro.sim.engine import Engine
from repro.sim.trace import Trace
from repro.vswitch.costs import CostModel
from repro.vswitch.vswitch import VSwitch


class SmartNic:
    """A server's SmartNIC hosting a vSwitch among other hypervisors.

    The vSwitch gets a fixed slice of the card (8 cores / 10 GB in the
    paper's testbed, already encoded in :class:`CostModel`); the rest of
    the card (storage network, container network, VMM helpers) is outside
    the simulation but motivates why the slice is small.
    """

    def __init__(self, engine: Engine, server: ServerNode,
                 cost_model: Optional[CostModel] = None,
                 trace: Optional[Trace] = None) -> None:
        self.engine = engine
        self.server = server
        self.cost_model = cost_model or CostModel.testbed()
        self.vswitch = VSwitch(engine, server, self.cost_model,
                               name=f"vs-{server.name}", trace=trace)
        from repro import telemetry
        tel = telemetry.current()
        if tel is not None:
            tel.register_smartnic(self)

    @property
    def name(self) -> str:
        return self.server.name

    def cpu_utilization(self) -> float:
        return self.vswitch.cpu_utilization()

    def memory_utilization(self) -> float:
        return self.vswitch.memory_utilization()

    def __repr__(self) -> str:
        return f"SmartNic({self.name})"
