"""Hosts: servers, SmartNICs, and tenant VMs.

* :class:`SmartNic` composes a fabric server node with its vSwitch and
  tracks the non-network hypervisors sharing the card (storage, VMM),
  which is why only a slice of the card serves virtual networking (§2.2.2).
* :class:`Vm` models the tenant VM's kernel stack: per-connection work has
  a serial (kernel-lock) component and a parallelizable component, which
  produces the sub-linear CPS-vs-vCPU curve of Fig 10 and the "VM becomes
  the bottleneck" endpoint the paper reports.
* :class:`GuestTcp` gives VMs simple TCP endpoints (the TCP_CRR client
  and server live in :mod:`repro.workloads`).
"""

from repro.host.smartnic import SmartNic
from repro.host.vm import Vm, VmCostModel
from repro.host.guest_tcp import GuestConnection, GuestTcp

__all__ = ["SmartNic", "Vm", "VmCostModel", "GuestTcp", "GuestConnection"]
