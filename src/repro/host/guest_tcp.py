"""Minimal guest TCP endpoints for request/response workloads.

Implements exactly the exchange netperf TCP_CRR performs per transaction
(§6.2.1): SYN → SYN/ACK → request → response → FIN → FIN/ACK. Enough to
exercise the vSwitch slow path twice per connection (one first packet per
direction), drive the session FSM to ESTABLISHED and teardown, and measure
connections-per-second end to end.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.errors import ConfigError
from repro.net.addr import IPv4Address
from repro.net.five_tuple import FiveTuple
from repro.net.packet import Packet
from repro.net.tcp import TcpFlags, TcpHeader
from repro.host.vm import Vm
from repro.vswitch.vnic import Vnic


class ConnState(enum.Enum):
    CONNECTING = "connecting"
    REQUEST_SENT = "request_sent"
    CLOSING = "closing"
    DONE = "done"
    FAILED = "failed"


class GuestConnection:
    """Client-side transaction state for one TCP_CRR exchange."""

    __slots__ = ("five_tuple", "state", "opened_at", "completed_at",
                 "on_done", "on_fail")

    def __init__(self, five_tuple: FiveTuple, opened_at: float) -> None:
        self.five_tuple = five_tuple
        self.state = ConnState.CONNECTING
        self.opened_at = opened_at
        self.completed_at: Optional[float] = None
        self.on_done: Optional[Callable[["GuestConnection"], None]] = None
        self.on_fail: Optional[Callable[["GuestConnection"], None]] = None

    @property
    def latency(self) -> float:
        if self.completed_at is None:
            raise ConfigError("transaction not complete")
        return self.completed_at - self.opened_at


class GuestTcp:
    """A VM-resident TCP endpoint bound to one vNIC."""

    def __init__(self, vm: Vm, vnic: Vnic, request_bytes: int = 64,
                 response_bytes: int = 256, timeout: float = 1.0) -> None:
        self.vm = vm
        self.vnic = vnic
        self.engine = vm.engine
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.timeout = timeout
        self._conns: Dict[FiveTuple, GuestConnection] = {}
        self._next_port = 20000
        self.completed = 0
        self.failed = 0
        self.server_accepts = 0

    # -- server side -------------------------------------------------------------

    def serve(self, port: int) -> None:
        """Accept connections on ``port``, answering the CRR exchange."""
        self.vm.listen(self.vnic, port, self._server_rx)

    def _server_rx(self, packet: Packet) -> None:
        tcp = packet.find(TcpHeader)
        if tcp is None:
            return
        ip = packet.inner_ipv4()
        if tcp.flags.syn and not tcp.flags.ack:
            self.server_accepts += 1
            self._reply(ip.src, tcp.src_port, tcp.dst_port,
                        TcpFlags.of("syn", "ack"), new_connection=True)
        elif tcp.flags.psh:
            self._reply(ip.src, tcp.src_port, tcp.dst_port,
                        TcpFlags.of("psh", "ack"),
                        payload=b"r" * self.response_bytes)
        elif tcp.flags.fin:
            self._reply(ip.src, tcp.src_port, tcp.dst_port,
                        TcpFlags.of("fin", "ack"))

    def _reply(self, dst_ip: IPv4Address, dst_port: int, src_port: int,
               flags: TcpFlags, payload: bytes = b"",
               new_connection: bool = False) -> None:
        pkt = Packet.tcp(self.vnic.tenant_ip, dst_ip, src_port, dst_port,
                         flags, payload)
        self.vm.send(self.vnic, pkt, new_connection=new_connection)

    # -- client side ----------------------------------------------------------------

    def open(self, dst_ip: IPv4Address, dst_port: int,
             on_done: Optional[Callable[[GuestConnection], None]] = None,
             on_fail: Optional[Callable[[GuestConnection], None]] = None
             ) -> GuestConnection:
        """Start one CRR transaction; completion is reported via callbacks."""
        src_port = self._alloc_port()
        ft = FiveTuple(self.vnic.tenant_ip, dst_ip, 6, src_port, dst_port)
        conn = GuestConnection(ft, self.engine.now)
        conn.on_done = on_done
        conn.on_fail = on_fail
        self._conns[ft] = conn
        self.vm.listen(self.vnic, src_port,
                       lambda pkt, c=conn: self._client_rx(c, pkt))
        syn = Packet.tcp(ft.src_ip, ft.dst_ip, ft.src_port, ft.dst_port,
                         TcpFlags.of("syn"))
        self.vm.send(self.vnic, syn, new_connection=True)
        self.engine.call_after(self.timeout, self._check_timeout, conn)
        return conn

    def _alloc_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 64000:
            self._next_port = 20000
        return port

    def _client_rx(self, conn: GuestConnection, packet: Packet) -> None:
        tcp = packet.find(TcpHeader)
        if tcp is None or conn.state in (ConnState.DONE, ConnState.FAILED):
            return
        ft = conn.five_tuple
        if tcp.flags.syn and tcp.flags.ack and conn.state is ConnState.CONNECTING:
            request = Packet.tcp(ft.src_ip, ft.dst_ip, ft.src_port,
                                 ft.dst_port, TcpFlags.of("psh", "ack"),
                                 b"q" * self.request_bytes)
            conn.state = ConnState.REQUEST_SENT
            self.vm.send(self.vnic, request)
        elif tcp.flags.psh and conn.state is ConnState.REQUEST_SENT:
            fin = Packet.tcp(ft.src_ip, ft.dst_ip, ft.src_port, ft.dst_port,
                             TcpFlags.of("fin", "ack"))
            conn.state = ConnState.CLOSING
            self.vm.send(self.vnic, fin)
        elif tcp.flags.fin and conn.state is ConnState.CLOSING:
            conn.state = ConnState.DONE
            conn.completed_at = self.engine.now
            self.completed += 1
            self._finish(conn)
            if conn.on_done is not None:
                conn.on_done(conn)

    def _check_timeout(self, conn: GuestConnection) -> None:
        if conn.state in (ConnState.DONE, ConnState.FAILED):
            return
        conn.state = ConnState.FAILED
        self.failed += 1
        self._finish(conn)
        if conn.on_fail is not None:
            conn.on_fail(conn)

    def _finish(self, conn: GuestConnection) -> None:
        self._conns.pop(conn.five_tuple, None)
        self.vm.unlisten(self.vnic, conn.five_tuple.src_port)

    @property
    def in_flight(self) -> int:
        return len(self._conns)
