"""Tenant VM model: the kernel stack that becomes Nezha's new bottleneck.

The paper observes that once Nezha removes the vSwitch bottleneck, CPS is
limited by "processing bottlenecks in the VM kernel (such as kernel locks
and the limits on manageable connections)" (§6.2.2, Fig 10). We model each
new connection as

* a **serial** slice on a single kernel-lock resource (accept queue,
  ehash/bind locks), and
* a **parallel** slice schedulable on any vCPU;

so connection throughput is ``min(1/serial, n_vcpu/(serial+parallel))`` —
near-linear scaling at small vCPU counts, a hard plateau once the lock
saturates. Per-packet costs ride on the vCPU pool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.net.packet import Packet
from repro.sim.engine import Engine
from repro.sim.resources import CpuResource
from repro.telemetry import spans as _spans
from repro.vswitch.vnic import Vnic


@dataclass
class VmCostModel:
    """Per-vCPU frequency and kernel-path cycle costs."""

    hz: float = 2.5e9
    conn_serial_cycles: float = 8300.0     # under the global kernel lock
    conn_parallel_cycles: float = 300000.0  # socket setup, app wakeups, TLS...
    pkt_cycles: float = 3000.0              # per-packet kernel processing
    max_backlog: float = 0.02               # accept-queue bound (seconds)

    @classmethod
    def testbed(cls, scale: float = 50.0) -> "VmCostModel":
        """Match the vSwitch testbed scaling so ratios are preserved."""
        model = cls()
        model.hz = model.hz / scale
        return model

    def serial_cap(self) -> float:
        """Theoretical lock-bound CPS ceiling."""
        return self.hz / self.conn_serial_cycles

    def parallel_cap(self, vcpus: int) -> float:
        """Theoretical core-bound CPS ceiling."""
        return vcpus * self.hz / (self.conn_serial_cycles
                                  + self.conn_parallel_cycles)


# PCI BDF space available to vNICs (§7.4): without SR-IOV/SIOV a VM has
# 256 bus numbers, most consumed by storage/compute/crypto functions,
# leaving "only a few dozen" for vNICs. SR-IOV/SIOV adds 256 more.
BDF_FOR_VNICS_DEFAULT = 48
BDF_FOR_VNICS_SRIOV = 48 + 256


class Vm:
    """A tenant VM: vCPUs, a kernel lock, attached vNICs, and apps."""

    def __init__(self, engine: Engine, name: str, vcpus: int,
                 cost_model: Optional[VmCostModel] = None,
                 sriov: bool = False) -> None:
        if vcpus < 1:
            raise ConfigError("a VM needs at least one vCPU")
        self.bdf_budget = (BDF_FOR_VNICS_SRIOV if sriov
                           else BDF_FOR_VNICS_DEFAULT)
        self.engine = engine
        self.name = name
        self.vcpus = vcpus
        self.cost_model = cost_model or VmCostModel.testbed()
        self.cpu = CpuResource(engine, vcpus, self.cost_model.hz,
                               name=f"{name}.cpu", util_window=0.1)
        self.kernel_lock = CpuResource(engine, 1, self.cost_model.hz,
                                       name=f"{name}.lock", util_window=0.1)
        self.vnics: List[Vnic] = []
        # (vnic_id, local_port) -> app callback(packet)
        self._listeners: Dict[tuple, Callable[[Packet], None]] = {}
        self.kernel_drops = 0
        self.conns_opened = 0

    # -- vNIC plumbing -----------------------------------------------------------

    def bdf_used(self) -> int:
        """BDF numbers consumed: one per parent vNIC; child vNICs share
        the parent's I/O adapter (§7.4)."""
        return sum(1 for vnic in self.vnics if vnic.parent is None)

    def attach_vnic(self, vnic: Vnic) -> None:
        if vnic.parent is None and self.bdf_used() >= self.bdf_budget:
            raise ConfigError(
                f"{self.name}: out of BDF numbers ({self.bdf_budget}); "
                "enable SR-IOV/SIOV or use child vNICs (§7.4)")
        self.vnics.append(vnic)
        vnic.attach_guest(lambda pkt, v=vnic: self._rx(v, pkt),
                          lambda pkt, n, v=vnic: self._rx_run(v, pkt, n))

    def listen(self, vnic: Vnic, port: int,
               handler: Callable[[Packet], None]) -> None:
        """Register an app handler for packets to (vnic, local port)."""
        self._listeners[(vnic.vnic_id, port)] = handler

    def unlisten(self, vnic: Vnic, port: int) -> None:
        self._listeners.pop((vnic.vnic_id, port), None)

    def _rx_complete(self, vnic: Vnic, packet: Packet) -> None:
        # Terminal span hop, recorded at the same instant a listener's
        # own latency math runs — span totals match experiment numbers
        # exactly, not just within rounding.
        if _spans.ACTIVE:
            _spans.finish(packet, "vm_rx", self.engine.now)
        l4 = packet.inner_l4()
        dst_port = getattr(l4, "dst_port", 0)
        handler = self._listeners.get((vnic.vnic_id, dst_port))
        if handler is not None:
            handler(packet)

    def _rx(self, vnic: Vnic, packet: Packet) -> None:
        """Kernel receive: charge per-packet cost, then demux to the app."""
        if CpuResource.direct_dispatch:
            if not self.cpu.try_submit_call(self.cost_model.pkt_cycles,
                                            self.cost_model.max_backlog,
                                            self._rx_complete, vnic, packet):
                self.kernel_drops += 1
            return
        job = self.cpu.try_submit(self.cost_model.pkt_cycles,
                                  self.cost_model.max_backlog)
        if job is None:
            self.kernel_drops += 1
            return

        def deliver():
            yield job
            self._rx_complete(vnic, packet)

        self.engine.process(deliver(), name=f"{self.name}.rx")

    def _rx_run(self, vnic: Vnic, packet: Packet, count: int) -> None:
        """Fluid kernel receive: one job covers the whole run; listener
        delivery (absent for elephant sinks) materializes copies."""
        cm = self.cost_model

        def complete():
            l4 = packet.inner_l4()
            dst_port = getattr(l4, "dst_port", 0)
            handler = self._listeners.get((vnic.vnic_id, dst_port))
            if handler is not None:
                for _ in range(count):
                    handler(packet.copy())

        if CpuResource.direct_dispatch:
            if not self.cpu.try_submit_call(cm.pkt_cycles * count,
                                            cm.max_backlog, complete):
                self.kernel_drops += count
            return
        job = self.cpu.try_submit(cm.pkt_cycles * count, cm.max_backlog)
        if job is None:
            self.kernel_drops += count
            return

        def deliver():
            yield job
            complete()

        self.engine.process(deliver(), name=f"{self.name}.rx")

    # -- transmission -----------------------------------------------------------------

    def _tx_complete(self, vnic: Vnic, packet: Packet,
                     on_sent: Optional[Callable[[], None]]) -> None:
        vnic.host.send_from_vnic(vnic, packet)
        if on_sent is not None:
            on_sent()

    def _dispatch_conn(self, serial_cycles: float, parallel_cycles: float,
                       fn, *args) -> bool:
        """Book the lock + vCPU slices of a connection burst and schedule
        ``fn`` at the instant — and micro-queue position — the legacy
        two-job generator would reach its body.

        The legacy generator yields the lock job first: if it finishes
        after the parallel job, completion resumes once off the lock pop
        (one micro-hop), then finds the parallel event already succeeded
        and hops once more; if the parallel job finishes later, its own
        pop resumes the body in a single hop. The lock slice is booked
        before the vCPU admission check, so a backlogged vCPU still
        consumes lock time — the same booking leak the job path has.
        """
        cm = self.cost_model
        engine = self.engine
        end_lock = self.kernel_lock.try_book(serial_cycles, cm.max_backlog)
        if end_lock is None:
            return False
        end_par = self.cpu.try_book(parallel_cycles, cm.max_backlog)
        if end_par is None:
            return False
        if end_par > end_lock:
            engine.call_at(end_par, engine.call_soon, fn, *args)
        else:
            engine.call_at(end_lock, engine.call_soon,
                           engine.call_soon, fn, *args)
        return True

    def send(self, vnic: Vnic, packet: Packet,
             new_connection: bool = False,
             on_sent: Optional[Callable[[], None]] = None) -> None:
        """Charge the kernel cost, then hand the packet to the vSwitch.

        ``new_connection=True`` adds the connection-establishment cost,
        including the serial kernel-lock slice.
        """
        if vnic.host is None:
            raise ConfigError(f"{vnic!r} is not hosted by any vSwitch")
        cm = self.cost_model
        if CpuResource.direct_dispatch:
            if new_connection:
                self.conns_opened += 1
                if not self._dispatch_conn(cm.conn_serial_cycles,
                                           cm.conn_parallel_cycles,
                                           self._tx_complete,
                                           vnic, packet, on_sent):
                    self.kernel_drops += 1
            else:
                if not self.cpu.try_submit_call(cm.pkt_cycles,
                                                cm.max_backlog,
                                                self._tx_complete,
                                                vnic, packet, on_sent):
                    self.kernel_drops += 1
            return
        jobs = []
        if new_connection:
            self.conns_opened += 1
            lock_job = self.kernel_lock.try_submit(cm.conn_serial_cycles,
                                                   cm.max_backlog)
            if lock_job is None:
                self.kernel_drops += 1
                return
            par_job = self.cpu.try_submit(cm.conn_parallel_cycles,
                                          cm.max_backlog)
            if par_job is None:
                self.kernel_drops += 1
                return
            jobs = [lock_job, par_job]
        else:
            pkt_job = self.cpu.try_submit(cm.pkt_cycles, cm.max_backlog)
            if pkt_job is None:
                self.kernel_drops += 1
                return
            jobs = [pkt_job]

        def transmit():
            for job in jobs:
                yield job
            vnic.host.send_from_vnic(vnic, packet)
            if on_sent is not None:
                on_sent()

        self.engine.process(transmit(), name=f"{self.name}.tx")

    def send_burst(self, vnic: Vnic, packets: List[Packet],
                   new_connection: bool = False,
                   on_sent: Optional[Callable[[], None]] = None) -> None:
        """Burst transmit: the kernel cost for the whole burst is charged
        as one transaction (n× the per-packet — or per-connection —
        cycles of :meth:`send`), then every packet is handed to the
        vSwitch datapath together. Drop-tail rejects the whole burst.
        """
        if vnic.host is None:
            raise ConfigError(f"{vnic!r} is not hosted by any vSwitch")
        packets = list(packets)
        if not packets:
            return
        n = len(packets)
        cm = self.cost_model
        if CpuResource.direct_dispatch:
            if new_connection:
                self.conns_opened += n
                if not self._dispatch_conn(cm.conn_serial_cycles * n,
                                           cm.conn_parallel_cycles * n,
                                           self._tx_burst_complete,
                                           vnic, packets, on_sent):
                    self.kernel_drops += n
            else:
                if not self.cpu.try_submit_call(cm.pkt_cycles * n,
                                                cm.max_backlog,
                                                self._tx_burst_complete,
                                                vnic, packets, on_sent):
                    self.kernel_drops += n
            return
        if new_connection:
            self.conns_opened += n
            lock_job = self.kernel_lock.try_submit(
                cm.conn_serial_cycles * n, cm.max_backlog)
            if lock_job is None:
                self.kernel_drops += n
                return
            par_job = self.cpu.try_submit(cm.conn_parallel_cycles * n,
                                          cm.max_backlog)
            if par_job is None:
                self.kernel_drops += n
                return
            jobs = [lock_job, par_job]
        else:
            pkt_job = self.cpu.try_submit(cm.pkt_cycles * n, cm.max_backlog)
            if pkt_job is None:
                self.kernel_drops += n
                return
            jobs = [pkt_job]

        def transmit():
            for job in jobs:
                yield job
            vnic.host.send_from_vnic_burst(vnic, packets)
            if on_sent is not None:
                on_sent()

        self.engine.process(transmit(), name=f"{self.name}.tx")

    def _tx_burst_complete(self, vnic: Vnic, packets: List[Packet],
                           on_sent: Optional[Callable[[], None]]) -> None:
        vnic.host.send_from_vnic_burst(vnic, packets)
        if on_sent is not None:
            on_sent()

    def send_run(self, vnic: Vnic, packet: Packet, count: int,
                 on_sent: Optional[Callable[[], None]] = None) -> None:
        """Fluid transmit: ``count`` identical data packets charged as one
        kernel transaction and handed to the vSwitch as a run descriptor
        — no per-packet objects anywhere on the hot path."""
        if vnic.host is None:
            raise ConfigError(f"{vnic!r} is not hosted by any vSwitch")
        cm = self.cost_model

        def complete():
            vnic.host.send_from_vnic_run(vnic, packet, count)
            if on_sent is not None:
                on_sent()

        if CpuResource.direct_dispatch:
            if not self.cpu.try_submit_call(cm.pkt_cycles * count,
                                            cm.max_backlog, complete):
                self.kernel_drops += count
            return
        job = self.cpu.try_submit(cm.pkt_cycles * count, cm.max_backlog)
        if job is None:
            self.kernel_drops += count
            return

        def transmit():
            yield job
            complete()

        self.engine.process(transmit(), name=f"{self.name}.tx")

    # -- telemetry ------------------------------------------------------------------------

    def cpu_utilization(self) -> float:
        return self.cpu.utilization()

    def __repr__(self) -> str:
        return f"Vm({self.name}, vcpus={self.vcpus})"
